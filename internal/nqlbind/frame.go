package nqlbind

import (
	"fmt"

	"repro/internal/dataframe"
	"repro/internal/nql"
)

// FrameObject wraps a dataframe.Frame for NQL scripts. Method names follow
// pandas ergonomics (filter, sort_values, groupby/agg, merge, head, ...).
type FrameObject struct {
	F *dataframe.Frame

	// methods memoizes bound-method values per name (same single-run,
	// single-goroutine ownership argument as GraphObject.methods).
	methods map[string]nql.Value
}

// NewFrameObject wraps f.
func NewFrameObject(f *dataframe.Frame) *FrameObject { return &FrameObject{F: f} }

// TypeName implements nql.Object.
func (o *FrameObject) TypeName() string { return "frame" }

// String renders the frame as a table.
func (o *FrameObject) String() string { return o.F.String() }

// Size implements nql.Sizer: len(frame) is the row count.
func (o *FrameObject) Size() int { return o.F.NumRows() }

// rowView caches a frame's column slices so row maps assemble straight from
// columnar storage — no intermediate map[string]any per row. This is the
// single hottest allocation site of the evaluation matrix (every records()/
// filter()/mutate() call builds one NQL map per row per trial). Callers
// whose per-row callback can mutate the frame (filter/mutate predicates)
// must refresh() before each row so in-flight appends or copy-on-write
// column replacements stay visible, as they were with per-row map reads.
type rowView struct {
	f     *dataframe.Frame
	names []string
	cols  []nql.Value // column names pre-boxed once for SetBoxed
	data  [][]any
}

func newRowView(f *dataframe.Frame) rowView {
	cols := f.Columns()
	boxed := make([]nql.Value, len(cols))
	data := make([][]any, len(cols))
	for i, c := range cols {
		boxed[i] = c
		data[i], _ = f.Column(c)
	}
	return rowView{f: f, names: cols, cols: boxed, data: data}
}

// refresh re-reads the column slices (cheap: no allocation) so the next
// mapAt observes any mutation the previous callback performed.
func (rv *rowView) refresh() {
	for i, c := range rv.names {
		rv.data[i], _ = rv.f.Column(c)
	}
}

func (rv *rowView) mapAt(i int) *nql.Map {
	m := nql.NewMapCap(len(rv.cols))
	for j, c := range rv.cols {
		m.SetBoxed(c, fromGoValue(rv.data[j][i]))
	}
	return m
}

func colsFromArgs(line int, name string, args []nql.Value) ([]string, error) {
	var cols []string
	for _, a := range args {
		switch x := a.(type) {
		case string:
			cols = append(cols, x)
		case *nql.List:
			for _, it := range x.Items {
				s, err := wantString(line, name, "column", it)
				if err != nil {
					return nil, err
				}
				cols = append(cols, s)
			}
		default:
			return nil, &nql.RuntimeError{Class: nql.ErrArg, Line: line,
				Msg: fmt.Sprintf("%s() expects column names, got %s", name, nql.TypeName(a))}
		}
	}
	return cols, nil
}

// Member implements nql.Object, memoizing bound methods per name.
func (o *FrameObject) Member(name string) (nql.Value, bool) {
	if v, ok := o.methods[name]; ok {
		return v, true
	}
	v, ok := o.member(name)
	if ok {
		if o.methods == nil {
			o.methods = make(map[string]nql.Value, 4)
		}
		o.methods[name] = v
	}
	return v, ok
}

func (o *FrameObject) member(name string) (nql.Value, bool) {
	f := o.F
	switch name {
	case "columns":
		return method("columns", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			return stringsToList(f.Columns()), nil
		}), true
	case "num_rows", "count":
		return method(name, func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			return int64(f.NumRows()), nil
		}), true
	case "records", "to_records":
		return method(name, func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			rv := newRowView(f)
			items := make([]nql.Value, f.NumRows())
			for i := range items {
				items[i] = rv.mapAt(i)
			}
			return nql.NewList(items...), nil
		}), true
	case "row":
		return method("row", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			if len(args) != 1 {
				return nil, argCount(line, "row", "1", len(args))
			}
			i, err := wantInt(line, "row", "index", args[0])
			if err != nil {
				return nil, err
			}
			if i < 0 || int(i) >= f.NumRows() {
				return nil, &nql.RuntimeError{Class: nql.ErrIndex, Line: line,
					Msg: fmt.Sprintf("row %d out of range (%d rows)", i, f.NumRows())}
			}
			rv := newRowView(f)
			return rv.mapAt(int(i)), nil
		}), true
	case "cell":
		return method("cell", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			if len(args) != 2 {
				return nil, argCount(line, "cell", "2", len(args))
			}
			i, err := wantInt(line, "cell", "row", args[0])
			if err != nil {
				return nil, err
			}
			col, err := wantString(line, "cell", "column", args[1])
			if err != nil {
				return nil, err
			}
			v, err := f.Cell(int(i), col)
			if err != nil {
				return nil, runtimeErr(nql.ErrAttr, line, err)
			}
			return fromGoValue(v), nil
		}), true
	case "column", "col":
		return method(name, func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			if len(args) != 1 {
				return nil, argCount(line, name, "1", len(args))
			}
			col, err := wantString(line, name, "column", args[0])
			if err != nil {
				return nil, err
			}
			vals, err := f.Column(col)
			if err != nil {
				return nil, runtimeErr(nql.ErrAttr, line, err)
			}
			items := make([]nql.Value, len(vals))
			for i, v := range vals {
				items[i] = fromGoValue(v)
			}
			return nql.NewList(items...), nil
		}), true
	case "filter":
		return method("filter", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			if len(args) != 1 {
				return nil, argCount(line, "filter", "1", len(args))
			}
			rv := newRowView(f)
			out, err := f.FilterIdx(func(i int) (bool, error) {
				rv.refresh()
				v, err := in.Call(args[0], []nql.Value{rv.mapAt(i)}, line)
				if err != nil {
					return false, err
				}
				return nql.Truthy(v), nil
			})
			if err != nil {
				if _, ok := err.(*nql.RuntimeError); ok {
					return nil, err
				}
				return nil, runtimeErr(nql.ErrOp, line, err)
			}
			return NewFrameObject(out), nil
		}), true
	case "filter_eq":
		return method("filter_eq", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			if len(args) != 2 {
				return nil, argCount(line, "filter_eq", "2", len(args))
			}
			col, err := wantString(line, "filter_eq", "column", args[0])
			if err != nil {
				return nil, err
			}
			out, err := f.FilterEq(col, toGoValue(args[1]))
			if err != nil {
				return nil, runtimeErr(nql.ErrAttr, line, err)
			}
			return NewFrameObject(out), nil
		}), true
	case "sort_values", "sort_by":
		return method(name, func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			if len(args) < 1 {
				return nil, argCount(line, name, "1+", len(args))
			}
			ascending := true
			colArgs := args
			if b, ok := args[len(args)-1].(bool); ok {
				ascending = b
				colArgs = args[:len(args)-1]
			}
			cols, err := colsFromArgs(line, name, colArgs)
			if err != nil {
				return nil, err
			}
			out, err := f.SortBy(ascending, cols...)
			if err != nil {
				return nil, runtimeErr(nql.ErrAttr, line, err)
			}
			return NewFrameObject(out), nil
		}), true
	case "select":
		return method("select", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			cols, err := colsFromArgs(line, "select", args)
			if err != nil {
				return nil, err
			}
			out, err := f.Select(cols...)
			if err != nil {
				return nil, runtimeErr(nql.ErrAttr, line, err)
			}
			return NewFrameObject(out), nil
		}), true
	case "drop":
		return method("drop", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			cols, err := colsFromArgs(line, "drop", args)
			if err != nil {
				return nil, err
			}
			out, err := f.Drop(cols...)
			if err != nil {
				return nil, runtimeErr(nql.ErrAttr, line, err)
			}
			return NewFrameObject(out), nil
		}), true
	case "rename":
		return method("rename", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			if len(args) != 2 {
				return nil, argCount(line, "rename", "2", len(args))
			}
			oldName, err := wantString(line, "rename", "old", args[0])
			if err != nil {
				return nil, err
			}
			newName, err := wantString(line, "rename", "new", args[1])
			if err != nil {
				return nil, err
			}
			out, err := f.Rename(oldName, newName)
			if err != nil {
				return nil, runtimeErr(nql.ErrAttr, line, err)
			}
			return NewFrameObject(out), nil
		}), true
	case "head":
		return method("head", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			if len(args) != 1 {
				return nil, argCount(line, "head", "1", len(args))
			}
			n, err := wantInt(line, "head", "n", args[0])
			if err != nil {
				return nil, err
			}
			return NewFrameObject(f.Head(int(n))), nil
		}), true
	case "mutate", "assign":
		return method(name, func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			if len(args) != 2 {
				return nil, argCount(line, name, "2", len(args))
			}
			col, err := wantString(line, name, "column", args[0])
			if err != nil {
				return nil, err
			}
			rv := newRowView(f)
			out, err := f.MutateIdx(col, func(i int) (any, error) {
				rv.refresh()
				v, err := in.Call(args[1], []nql.Value{rv.mapAt(i)}, line)
				if err != nil {
					return nil, err
				}
				return toGoValue(v), nil
			})
			if err != nil {
				if _, ok := err.(*nql.RuntimeError); ok {
					return nil, err
				}
				return nil, runtimeErr(nql.ErrOp, line, err)
			}
			return NewFrameObject(out), nil
		}), true
	case "unique":
		return method("unique", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			if len(args) != 1 {
				return nil, argCount(line, "unique", "1", len(args))
			}
			col, err := wantString(line, "unique", "column", args[0])
			if err != nil {
				return nil, err
			}
			vals, err := f.Unique(col)
			if err != nil {
				return nil, runtimeErr(nql.ErrAttr, line, err)
			}
			items := make([]nql.Value, len(vals))
			for i, v := range vals {
				items[i] = fromGoValue(v)
			}
			return nql.NewList(items...), nil
		}), true
	case "value_counts":
		return method("value_counts", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			if len(args) != 1 {
				return nil, argCount(line, "value_counts", "1", len(args))
			}
			col, err := wantString(line, "value_counts", "column", args[0])
			if err != nil {
				return nil, err
			}
			out, err := f.ValueCounts(col)
			if err != nil {
				return nil, runtimeErr(nql.ErrAttr, line, err)
			}
			return NewFrameObject(out), nil
		}), true
	case "sum", "mean", "min", "max":
		return method(name, func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			if len(args) != 1 {
				return nil, argCount(line, name, "1", len(args))
			}
			col, err := wantString(line, name, "column", args[0])
			if err != nil {
				return nil, err
			}
			var v any
			switch name {
			case "sum":
				v, err = f.Sum(col)
			case "mean":
				v, err = f.Mean(col)
			case "min":
				v, err = f.Min(col)
			case "max":
				v, err = f.Max(col)
			}
			if err != nil {
				return nil, runtimeErr(nql.ErrAttr, line, err)
			}
			return fromGoValue(v), nil
		}), true
	case "groupby":
		return method("groupby", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			cols, err := colsFromArgs(line, "groupby", args)
			if err != nil {
				return nil, err
			}
			g, err := f.GroupBy(cols...)
			if err != nil {
				return nil, runtimeErr(nql.ErrAttr, line, err)
			}
			return &GroupedObject{G: g}, nil
		}), true
	case "merge":
		return method("merge", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			if len(args) != 3 && len(args) != 4 {
				return nil, argCount(line, "merge", "3 or 4", len(args))
			}
			other, ok := args[0].(*FrameObject)
			if !ok {
				return nil, &nql.RuntimeError{Class: nql.ErrArg, Line: line, Msg: "merge() first argument must be a frame"}
			}
			lk, err := wantString(line, "merge", "left key", args[1])
			if err != nil {
				return nil, err
			}
			rk, err := wantString(line, "merge", "right key", args[2])
			if err != nil {
				return nil, err
			}
			kind := dataframe.InnerJoin
			if len(args) == 4 {
				ks, err := wantString(line, "merge", "kind", args[3])
				if err != nil {
					return nil, err
				}
				kind = dataframe.JoinKind(ks)
			}
			out, err := dataframe.Merge(f, other.F, lk, rk, kind)
			if err != nil {
				return nil, runtimeErr(nql.ErrArg, line, err)
			}
			return NewFrameObject(out), nil
		}), true
	case "append_row":
		return method("append_row", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			if len(args) != int(f.NumCols()) {
				return nil, argCount(line, "append_row", fmt.Sprintf("%d", f.NumCols()), len(args))
			}
			vals := make([]any, len(args))
			for i, a := range args {
				vals[i] = toGoValue(a)
			}
			f.AppendRow(vals...)
			return nil, nil
		}), true
	case "set_cell":
		return method("set_cell", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			if len(args) != 3 {
				return nil, argCount(line, "set_cell", "3", len(args))
			}
			i, err := wantInt(line, "set_cell", "row", args[0])
			if err != nil {
				return nil, err
			}
			col, err := wantString(line, "set_cell", "column", args[1])
			if err != nil {
				return nil, err
			}
			if err := f.SetCell(int(i), col, toGoValue(args[2])); err != nil {
				return nil, runtimeErr(nql.ErrAttr, line, err)
			}
			return nil, nil
		}), true
	case "clone":
		return method("clone", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			return NewFrameObject(f.Clone()), nil
		}), true
	default:
		return nil, false
	}
}

// GroupedObject wraps a dataframe grouping; its agg() accepts [col, fn] or
// [col, fn, name] specs.
type GroupedObject struct {
	G *dataframe.Grouped
}

// TypeName implements nql.Object.
func (o *GroupedObject) TypeName() string { return "grouped" }

// Member implements nql.Object.
func (o *GroupedObject) Member(name string) (nql.Value, bool) {
	switch name {
	case "num_groups":
		return method("num_groups", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			return int64(o.G.NumGroups()), nil
		}), true
	case "agg":
		return method("agg", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			if len(args) == 0 {
				return nil, argCount(line, "agg", "1+", len(args))
			}
			var specs []dataframe.AggSpec
			for _, a := range args {
				spec, err := parseAggSpec(line, a)
				if err != nil {
					return nil, err
				}
				specs = append(specs, spec)
			}
			out, err := o.G.Agg(specs...)
			if err != nil {
				return nil, runtimeErr(nql.ErrAttr, line, err)
			}
			return NewFrameObject(out), nil
		}), true
	case "count":
		return method("count", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			out, err := o.G.Agg(dataframe.AggSpec{Func: dataframe.AggCount})
			if err != nil {
				return nil, runtimeErr(nql.ErrOp, line, err)
			}
			return NewFrameObject(out), nil
		}), true
	default:
		return nil, false
	}
}

func parseAggSpec(line int, v nql.Value) (dataframe.AggSpec, error) {
	l, ok := v.(*nql.List)
	if !ok || len(l.Items) < 2 || len(l.Items) > 3 {
		return dataframe.AggSpec{}, &nql.RuntimeError{Class: nql.ErrArg, Line: line,
			Msg: "agg() specs must be [column, func] or [column, func, name] lists"}
	}
	col, ok1 := l.Items[0].(string)
	fn, ok2 := l.Items[1].(string)
	if !ok1 || !ok2 {
		return dataframe.AggSpec{}, &nql.RuntimeError{Class: nql.ErrArg, Line: line,
			Msg: "agg() spec elements must be strings"}
	}
	spec := dataframe.AggSpec{Col: col, Func: dataframe.AggFunc(fn)}
	if len(l.Items) == 3 {
		name, ok := l.Items[2].(string)
		if !ok {
			return dataframe.AggSpec{}, &nql.RuntimeError{Class: nql.ErrArg, Line: line,
				Msg: "agg() output name must be a string"}
		}
		spec.Name = name
	}
	switch spec.Func {
	case dataframe.AggSum, dataframe.AggMean, dataframe.AggMin, dataframe.AggMax,
		dataframe.AggCount, dataframe.AggFirst, dataframe.AggLast:
	default:
		return dataframe.AggSpec{}, &nql.RuntimeError{Class: nql.ErrArg, Line: line,
			Msg: fmt.Sprintf("unknown aggregation %q (want sum/mean/min/max/count/first/last)", spec.Func)}
	}
	return spec, nil
}

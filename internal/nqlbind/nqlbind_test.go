package nqlbind

import (
	"strings"
	"testing"

	"repro/internal/dataframe"
	"repro/internal/graph"
	"repro/internal/nql"
	"repro/internal/sqldb"
)

func testGraph() *graph.Graph {
	g := graph.NewDirected()
	g.AddNode("a", graph.Attrs{"ip": "15.76.0.1"})
	g.AddNode("b", graph.Attrs{"ip": "15.76.0.2"})
	g.AddNode("c", graph.Attrs{"ip": "10.0.0.1"})
	g.AddEdge("a", "b", graph.Attrs{"bytes": 100, "packets": 10})
	g.AddEdge("b", "c", graph.Attrs{"bytes": 300, "packets": 30})
	g.AddEdge("a", "c", graph.Attrs{"bytes": 50, "packets": 5})
	return g
}

func runWithGraph(t *testing.T, g *graph.Graph, src string) (nql.Value, error) {
	t.Helper()
	in := nql.NewInterp(nql.Limits{}, Globals(g, nil))
	return in.Run(src)
}

func mustRun(t *testing.T, g *graph.Graph, src string) nql.Value {
	t.Helper()
	v, err := runWithGraph(t, g, src)
	if err != nil {
		t.Fatalf("error: %v\nsource:\n%s", err, src)
	}
	return v
}

func TestGraphNodesEdges(t *testing.T) {
	g := testGraph()
	v := mustRun(t, g, `return [len(graph.nodes()), len(graph.edges()), graph.number_of_nodes(), graph.number_of_edges()]`)
	l := v.(*nql.List)
	if l.Items[0] != int64(3) || l.Items[1] != int64(3) || l.Items[2] != int64(3) || l.Items[3] != int64(3) {
		t.Fatalf("got %s", nql.Repr(v))
	}
}

func TestGraphNodeAttrAccess(t *testing.T) {
	g := testGraph()
	v := mustRun(t, g, `return graph.node("a")["ip"]`)
	if v != "15.76.0.1" {
		t.Fatalf("got %v", v)
	}
}

func TestImaginaryAttributeError(t *testing.T) {
	g := testGraph()
	_, err := runWithGraph(t, g, `return graph.node("a")["bandwidth"]`)
	if err == nil || nql.ClassOf(err) != "attribute" {
		t.Fatalf("err = %v class=%s", err, nql.ClassOf(err))
	}
}

func TestImaginaryMethodError(t *testing.T) {
	g := testGraph()
	_, err := runWithGraph(t, g, `return graph.all_shortest_hyperpaths("a", "b")`)
	if err == nil || nql.ClassOf(err) != "attribute" {
		t.Fatalf("err = %v class=%s", err, nql.ClassOf(err))
	}
}

func TestArgumentErrors(t *testing.T) {
	g := testGraph()
	_, err := runWithGraph(t, g, `return graph.degree()`)
	if err == nil || nql.ClassOf(err) != "argument" {
		t.Fatalf("err = %v", err)
	}
	_, err = runWithGraph(t, g, `return graph.degree(42)`)
	if err == nil || nql.ClassOf(err) != "argument" {
		t.Fatalf("err = %v", err)
	}
}

func TestGraphMutation(t *testing.T) {
	g := testGraph()
	mustRun(t, g, `
graph.add_node("d", {"ip": "10.0.0.9"})
graph.add_edge("c", "d", {"bytes": 10})
graph.set_node_attr("a", "label", "app:production")
graph.node("b")["color"] = "red"`)
	if !g.HasEdge("c", "d") {
		t.Fatal("edge not added")
	}
	if g.NodeAttrs("a")["label"] != "app:production" {
		t.Fatal("set_node_attr failed")
	}
	if g.NodeAttrs("b")["color"] != "red" {
		t.Fatal("attr map write failed")
	}
}

func TestGraphEdgeIteration(t *testing.T) {
	g := testGraph()
	v := mustRun(t, g, `
let total = 0
for e in graph.edges() {
  total = total + e.attrs["bytes"]
}
return total`)
	if v != int64(450) {
		t.Fatalf("got %v", v)
	}
}

func TestGraphAlgorithms(t *testing.T) {
	g := testGraph()
	v := mustRun(t, g, `
let p = graph.shortest_path("a", "c")
let h = graph.hop_count("a", "c")
let d = graph.degree("a")
return [len(p), h, d]`)
	l := v.(*nql.List)
	if l.Items[0] != int64(2) || l.Items[1] != int64(1) || l.Items[2] != int64(2) {
		t.Fatalf("got %s", nql.Repr(v))
	}
}

func TestGraphDijkstra(t *testing.T) {
	g := testGraph()
	v := mustRun(t, g, `
let r = graph.dijkstra_path("a", "c", "bytes")
return r["cost"]`)
	if v != 50.0 {
		t.Fatalf("got %v", v)
	}
}

func TestGraphCentralityMaps(t *testing.T) {
	g := testGraph()
	v := mustRun(t, g, `
let dc = graph.degree_centrality()
return dc["b"]`)
	if v != 1.0 { // b has degree 2, n-1 = 2
		t.Fatalf("got %v", v)
	}
}

func TestGraphSubgraphClone(t *testing.T) {
	g := testGraph()
	v := mustRun(t, g, `
let sub = graph.subgraph(["a", "b"])
let cp = graph.clone()
cp.remove_node("a")
return [sub.number_of_nodes(), sub.number_of_edges(), cp.number_of_nodes(), graph.number_of_nodes()]`)
	l := v.(*nql.List)
	if l.Items[0] != int64(2) || l.Items[1] != int64(1) || l.Items[2] != int64(2) || l.Items[3] != int64(3) {
		t.Fatalf("got %s", nql.Repr(v))
	}
}

func TestGraphRemoveMissing(t *testing.T) {
	g := testGraph()
	_, err := runWithGraph(t, g, `graph.remove_node("ghost")`)
	if err == nil || nql.ClassOf(err) != "value" {
		t.Fatalf("err = %v", err)
	}
}

func TestWeightedDegreeBinding(t *testing.T) {
	g := testGraph()
	v := mustRun(t, g, `return graph.weighted_degree("a", "bytes")`)
	if v != 150.0 {
		t.Fatalf("got %v", v)
	}
}

func TestKMeansBuiltin(t *testing.T) {
	g := testGraph()
	v := mustRun(t, g, `return kmeans([1.0, 2.0, 100.0, 101.0], 2)`)
	l := v.(*nql.List)
	if l.Items[0] != int64(0) || l.Items[2] != int64(1) {
		t.Fatalf("got %s", nql.Repr(v))
	}
	_, err := runWithGraph(t, g, `return kmeans([1.0], 0)`)
	if err == nil || nql.ClassOf(err) != "value" {
		t.Fatalf("err = %v", err)
	}
}

func testFrames() (nodes, edges *dataframe.Frame) {
	nodes = dataframe.New("id", "ip")
	nodes.AppendRow("a", "15.76.0.1")
	nodes.AppendRow("b", "15.76.0.2")
	nodes.AppendRow("c", "10.0.0.1")
	edges = dataframe.New("src", "dst", "bytes")
	edges.AppendRow("a", "b", 100)
	edges.AppendRow("b", "c", 300)
	edges.AppendRow("a", "c", 50)
	return nodes, edges
}

func runWithFrames(t *testing.T, src string) (nql.Value, error) {
	t.Helper()
	nodes, edges := testFrames()
	globals := Globals(nil, map[string]nql.Value{
		"nodes_df": NewFrameObject(nodes),
		"edges_df": NewFrameObject(edges),
	})
	in := nql.NewInterp(nql.Limits{}, globals)
	return in.Run(src)
}

func TestFrameBasics(t *testing.T) {
	v, err := runWithFrames(t, `return [edges_df.num_rows(), len(edges_df.columns()), edges_df.cell(0, "bytes")]`)
	if err != nil {
		t.Fatal(err)
	}
	l := v.(*nql.List)
	if l.Items[0] != int64(3) || l.Items[1] != int64(3) || l.Items[2] != int64(100) {
		t.Fatalf("got %s", nql.Repr(v))
	}
}

func TestFrameFilterSortChain(t *testing.T) {
	v, err := runWithFrames(t, `
let big = edges_df.filter(fn(r) => r["bytes"] >= 100)
let top = big.sort_values("bytes", false)
return top.cell(0, "src")`)
	if err != nil {
		t.Fatal(err)
	}
	if v != "b" {
		t.Fatalf("got %v", v)
	}
}

func TestFrameGroupbyAgg(t *testing.T) {
	v, err := runWithFrames(t, `
let g = edges_df.groupby("src")
let agg = g.agg(["bytes", "sum", "total"])
let sorted_agg = agg.sort_values("total", false)
return [sorted_agg.cell(0, "src"), sorted_agg.cell(0, "total")]`)
	if err != nil {
		t.Fatal(err)
	}
	l := v.(*nql.List)
	if l.Items[0] != "b" || l.Items[1] != int64(300) {
		t.Fatalf("got %s", nql.Repr(v))
	}
}

func TestFrameMerge(t *testing.T) {
	v, err := runWithFrames(t, `
let j = edges_df.merge(nodes_df, "src", "id")
return [j.num_rows(), j.cell(0, "ip")]`)
	if err != nil {
		t.Fatal(err)
	}
	l := v.(*nql.List)
	if l.Items[0] != int64(3) || l.Items[1] != "15.76.0.1" {
		t.Fatalf("got %s", nql.Repr(v))
	}
}

func TestFrameImaginaryColumn(t *testing.T) {
	_, err := runWithFrames(t, `return edges_df.sum("bandwidth")`)
	if err == nil || nql.ClassOf(err) != "attribute" {
		t.Fatalf("err = %v", err)
	}
	_, err = runWithFrames(t, `return edges_df.groupby("ghost")`)
	if err == nil || nql.ClassOf(err) != "attribute" {
		t.Fatalf("err = %v", err)
	}
}

func TestFrameMutateRecords(t *testing.T) {
	v, err := runWithFrames(t, `
let f = edges_df.mutate("kb", fn(r) => r["bytes"] / 1000.0)
let recs = f.records()
return recs[1]["kb"]`)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0.3 {
		t.Fatalf("got %v", v)
	}
}

func TestFrameAggSpecValidation(t *testing.T) {
	_, err := runWithFrames(t, `return edges_df.groupby("src").agg(["bytes", "median"])`)
	if err == nil || nql.ClassOf(err) != "argument" {
		t.Fatalf("err = %v", err)
	}
	_, err = runWithFrames(t, `return edges_df.groupby("src").agg("bytes")`)
	if err == nil || nql.ClassOf(err) != "argument" {
		t.Fatalf("err = %v", err)
	}
}

func testDB() *sqldb.DB {
	nodes, edges := testFrames()
	db := sqldb.NewDB()
	db.CreateTable("nodes", nodes)
	db.CreateTable("edges", edges)
	return db
}

func runWithDB(t *testing.T, src string) (nql.Value, error) {
	t.Helper()
	globals := Globals(nil, map[string]nql.Value{"db": NewDBObject(testDB())})
	in := nql.NewInterp(nql.Limits{}, globals)
	return in.Run(src)
}

func TestDBQuery(t *testing.T) {
	v, err := runWithDB(t, `
let f = db.query("SELECT src, SUM(bytes) AS total FROM edges GROUP BY src ORDER BY total DESC")
return [f.num_rows(), f.cell(0, "src"), f.cell(0, "total")]`)
	if err != nil {
		t.Fatal(err)
	}
	l := v.(*nql.List)
	if l.Items[0] != int64(2) || l.Items[1] != "b" || l.Items[2] != int64(300) {
		t.Fatalf("got %s", nql.Repr(v))
	}
}

func TestDBExec(t *testing.T) {
	v, err := runWithDB(t, `
let n = db.exec("UPDATE edges SET bytes = bytes * 2 WHERE src = 'a'")
let f = db.query("SELECT SUM(bytes) AS s FROM edges")
return [n, f.cell(0, "s")]`)
	if err != nil {
		t.Fatal(err)
	}
	l := v.(*nql.List)
	if l.Items[0] != int64(2) || l.Items[1] != int64(600) {
		t.Fatalf("got %s", nql.Repr(v))
	}
}

func TestDBSyntaxErrorClass(t *testing.T) {
	_, err := runWithDB(t, `return db.query("SELEKT * FROM edges")`)
	if err == nil {
		t.Fatal("expected error")
	}
	if nql.ClassOf(err) != "operation" || !strings.Contains(err.Error(), "syntax") {
		t.Fatalf("err = %v class=%s", err, nql.ClassOf(err))
	}
}

func TestDBUnknownTableClass(t *testing.T) {
	_, err := runWithDB(t, `return db.query("SELECT * FROM ghost")`)
	if err == nil || nql.ClassOf(err) != "attribute" {
		t.Fatalf("err = %v class=%s", err, nql.ClassOf(err))
	}
}

func TestDBTablesList(t *testing.T) {
	v, err := runWithDB(t, `return db.tables()`)
	if err != nil {
		t.Fatal(err)
	}
	l := v.(*nql.List)
	if len(l.Items) != 2 || l.Items[0] != "nodes" {
		t.Fatalf("got %s", nql.Repr(v))
	}
}

func TestEdgeObjectMembers(t *testing.T) {
	g := testGraph()
	v := mustRun(t, g, `
let e = graph.edges()[0]
return [e.src, e.dst, e.u, e.v, e.attrs["bytes"]]`)
	l := v.(*nql.List)
	if l.Items[0] != "a" || l.Items[1] != "b" || l.Items[4] != int64(100) {
		t.Fatalf("got %s", nql.Repr(v))
	}
}

func TestAttrMapHelpers(t *testing.T) {
	g := testGraph()
	v := mustRun(t, g, `
let a = graph.node("a")
return [a.get("ip"), a.get("missing", "dflt"), a.has("ip"), len(a), keys(a)]`)
	l := v.(*nql.List)
	if l.Items[0] != "15.76.0.1" || l.Items[1] != "dflt" || l.Items[2] != true || l.Items[3] != int64(1) {
		t.Fatalf("got %s", nql.Repr(v))
	}
}

func TestEndToEndColorByPrefix(t *testing.T) {
	// The paper's Figure 1 query: assign a unique color per /16 prefix.
	g := testGraph()
	mustRun(t, g, `
let palette = ["red", "green", "blue", "orange"]
let prefix_color = {}
let next = 0
for n in graph.nodes() {
  let parts = split(graph.node(n)["ip"], ".")
  let prefix = parts[0] + "." + parts[1]
  if not contains(prefix_color, prefix) {
    prefix_color[prefix] = palette[next]
    next = next + 1
  }
  graph.node(n)["color"] = prefix_color[prefix]
}`)
	if g.NodeAttrs("a")["color"] != g.NodeAttrs("b")["color"] {
		t.Fatal("same prefix should share a color")
	}
	if g.NodeAttrs("a")["color"] == g.NodeAttrs("c")["color"] {
		t.Fatal("different prefixes should differ")
	}
}

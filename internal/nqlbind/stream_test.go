package nqlbind

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/nql"
	"repro/internal/traffic"
)

func runWithStream(t *testing.T, g *graph.Graph, s *traffic.Stream, src string) (nql.Value, error) {
	t.Helper()
	in := nql.NewInterp(nql.Limits{}, Globals(g, map[string]nql.Value{"stream": NewStreamObject(s)}))
	return in.Run(src)
}

// TestStreamBindingAppliesBatchesIncrementally drives the whole
// incremental-update path from sandboxed code: pull seeded batches off the
// stream, apply them with add_edge_batch, and end up with exactly the graph
// a Go-side builder produces from the same config.
func TestStreamBindingAppliesBatchesIncrementally(t *testing.T) {
	cfg := traffic.Config{Nodes: 60, Edges: 200, Seed: 9}
	s, err := traffic.NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.NewDirected()
	v, err := runWithStream(t, g, s, `
let applied = 0
while stream.remaining() > 0 {
  let batch = stream.next(64)
  applied = applied + graph.add_edge_batch(batch)
}
return [applied, stream.remaining(), graph.number_of_edges()]`)
	if err != nil {
		t.Fatal(err)
	}
	l := v.(*nql.List)
	if l.Items[0] != int64(200) || l.Items[1] != int64(0) || l.Items[2] != int64(200) {
		t.Fatalf("got %s", nql.Repr(v))
	}

	// The NQL-built graph must carry the same edges and attributes the
	// stream emits to any other consumer.
	ref, err := traffic.NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := graph.NewDirected()
	for {
		batch := ref.Next(33)
		if len(batch) == 0 {
			break
		}
		for _, e := range batch {
			want.AddEdge(e.U, e.V, e.Attrs())
		}
	}
	if !graph.Equal(g, want) {
		t.Fatal("sandbox-applied stream differs from Go-applied stream")
	}
}

// TestStreamBindingCursorRoundTrip stops inside the sandbox, resumes a new
// stream object from the serialized cursor, and checks continuity.
func TestStreamBindingCursorRoundTrip(t *testing.T) {
	cfg := traffic.Config{Nodes: 40, Edges: 100, Seed: 3}
	s, err := traffic.NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.NewDirected()
	v, err := runWithStream(t, g, s, `
graph.add_edge_batch(stream.next(37))
return stream.cursor()`)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := traffic.ParseCursor(v.(string))
	if err != nil {
		t.Fatal(err)
	}
	if cur.Pos != 37 {
		t.Fatalf("cursor pos = %d, want 37", cur.Pos)
	}
	resumed, err := traffic.ResumeStream(cur)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runWithStream(t, g, resumed, `
while stream.remaining() > 0 { graph.add_edge_batch(stream.next(10)) }
return 0`); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != cfg.Edges {
		t.Fatalf("resumed apply produced %d edges, want %d", g.NumEdges(), cfg.Edges)
	}
}

func TestStreamBindingErrors(t *testing.T) {
	s, err := traffic.NewStream(traffic.Config{Nodes: 10, Edges: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	g := graph.NewDirected()
	for _, tc := range []struct{ src, class string }{
		{`return stream.next("x")`, "argument"},
		{`return stream.next(-1)`, "value"},
		{`return stream.node_id(10)`, "value"},
		{`return graph.add_edge_batch(42)`, "argument"},
		{`return graph.add_edge_batch([{"src": "a"}])`, "value"},
		{`return stream.no_such_method()`, "attribute"},
	} {
		_, err := runWithStream(t, g, s, tc.src)
		if err == nil || nql.ClassOf(err) != tc.class {
			t.Fatalf("%s: err=%v class=%s want %s", tc.src, err, nql.ClassOf(err), tc.class)
		}
	}
	// node accessors work in range.
	v, err := runWithStream(t, g, s, `return [stream.node_id(3), stream.num_nodes()]`)
	if err != nil {
		t.Fatal(err)
	}
	l := v.(*nql.List)
	if l.Items[0] != "h003" || l.Items[1] != int64(10) {
		t.Fatalf("got %s", nql.Repr(v))
	}
}

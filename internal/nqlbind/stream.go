package nqlbind

// This file is the incremental graph-update binding: it exposes the
// streaming traffic generator to sandboxed NQL programs, so generated code
// can pull seeded edge batches and apply them to a graph
// (graph.add_edge_batch) instead of requiring the whole dataset to be
// materialized before the run — the sandbox-side face of the
// sharded/streaming dataset pipeline.

import (
	"fmt"

	"repro/internal/nql"
	"repro/internal/traffic"
)

// StreamObject wraps a traffic.Stream for NQL scripts. The stream is
// stateful (Next advances it), matching the one-goroutine-per-sandbox
// execution model; cursor() exposes the serializable resume point.
type StreamObject struct {
	S       *traffic.Stream
	methods map[string]nql.Value
}

// NewStreamObject wraps s.
func NewStreamObject(s *traffic.Stream) *StreamObject { return &StreamObject{S: s} }

// TypeName implements nql.Object.
func (o *StreamObject) TypeName() string { return "edge_stream" }

// String summarizes the stream.
func (o *StreamObject) String() string {
	cfg := o.S.Config()
	return fmt.Sprintf("edge_stream(%d nodes, %d edges, %d remaining)", cfg.Nodes, cfg.Edges, o.S.Remaining())
}

// Member implements nql.Object.
func (o *StreamObject) Member(name string) (nql.Value, bool) {
	if v, ok := o.methods[name]; ok {
		return v, true
	}
	v, ok := o.member(name)
	if ok {
		if o.methods == nil {
			o.methods = make(map[string]nql.Value, 4)
		}
		o.methods[name] = v
	}
	return v, ok
}

func (o *StreamObject) member(name string) (nql.Value, bool) {
	switch name {
	case "next":
		return method("next", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			if len(args) != 1 {
				return nil, argCount(line, "next", "1", len(args))
			}
			n, err := wantInt(line, "next", "n", args[0])
			if err != nil {
				return nil, err
			}
			if n < 0 {
				return nil, &nql.RuntimeError{Class: nql.ErrValue, Line: line, Msg: "next() n must be non-negative"}
			}
			batch := o.S.Next(int(n))
			items := make([]nql.Value, len(batch))
			for i, e := range batch {
				m := nql.NewMapCap(5)
				_ = m.Set("src", e.U)
				_ = m.Set("dst", e.V)
				_ = m.Set("bytes", e.Bytes)
				_ = m.Set("connections", e.Connections)
				_ = m.Set("packets", e.Packets)
				items[i] = m
			}
			return nql.NewList(items...), nil
		}), true
	case "remaining":
		return method("remaining", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			if len(args) != 0 {
				return nil, argCount(line, "remaining", "0", len(args))
			}
			return o.S.Remaining(), nil
		}), true
	case "cursor":
		return method("cursor", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			if len(args) != 0 {
				return nil, argCount(line, "cursor", "0", len(args))
			}
			return o.S.Cursor().Encode(), nil
		}), true
	case "node_id":
		return o.nodeFn("node_id", o.S.NodeID), true
	case "node_ip":
		return o.nodeFn("node_ip", o.S.NodeIP), true
	case "num_nodes":
		return method("num_nodes", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			if len(args) != 0 {
				return nil, argCount(line, "num_nodes", "0", len(args))
			}
			return int64(o.S.Config().Nodes), nil
		}), true
	}
	return nil, false
}

// nodeFn binds a (node index -> string) accessor with bounds checking.
func (o *StreamObject) nodeFn(name string, fn func(i int) string) *nql.Builtin {
	return method(name, func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
		if len(args) != 1 {
			return nil, argCount(line, name, "1", len(args))
		}
		i, err := wantInt(line, name, "index", args[0])
		if err != nil {
			return nil, err
		}
		if i < 0 || i >= int64(o.S.Config().Nodes) {
			return nil, &nql.RuntimeError{Class: nql.ErrValue, Line: line,
				Msg: fmt.Sprintf("%s() index %d outside [0,%d)", name, i, o.S.Config().Nodes)}
		}
		return fn(int(i)), nil
	})
}

package nqlbind

import (
	"context"
	"errors"
	"strings"

	"repro/internal/federate"
	"repro/internal/nql"
	"repro/internal/obs"
)

// FedObject exposes the federated query planner to NQL scripts as the
// `fed` binding of the federated backend. Scripts build logical plans with
// fed.scan(source, table) and the chainable PlanObject methods; the plan
// executes (with pushdown optimization) only when collect/count/cell/
// to_frame force it, against the catalog's cloned substrates.
type FedObject struct {
	Cat     *federate.Catalog
	methods map[string]nql.Value
}

// NewFedObject wraps a catalog.
func NewFedObject(cat *federate.Catalog) *FedObject { return &FedObject{Cat: cat} }

// TypeName implements nql.Object.
func (o *FedObject) TypeName() string { return "federation" }

// String names the sources for display.
func (o *FedObject) String() string {
	return "federation(" + strings.Join(o.Cat.Sources(), ", ") + ")"
}

// Member implements nql.Object.
func (o *FedObject) Member(name string) (nql.Value, bool) {
	if v, ok := o.methods[name]; ok {
		return v, true
	}
	v, ok := o.member(name)
	if ok {
		if o.methods == nil {
			o.methods = make(map[string]nql.Value, 4)
		}
		o.methods[name] = v
	}
	return v, ok
}

func (o *FedObject) member(name string) (nql.Value, bool) {
	switch name {
	case "scan":
		return method("scan", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			if len(args) != 2 {
				return nil, argCount(line, "scan", "2", len(args))
			}
			source, err := wantString(line, "scan", "source", args[0])
			if err != nil {
				return nil, err
			}
			table, err := wantString(line, "scan", "table", args[1])
			if err != nil {
				return nil, err
			}
			return &PlanObject{Cat: o.Cat, Plan: &federate.Scan{Source: source, Table: table}}, nil
		}), true
	case "sources":
		return method("sources", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			if len(args) != 0 {
				return nil, argCount(line, "sources", "0", len(args))
			}
			return stringsToList(o.Cat.Sources()), nil
		}), true
	case "tables":
		return method("tables", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			if len(args) != 1 {
				return nil, argCount(line, "tables", "1", len(args))
			}
			source, err := wantString(line, "tables", "source", args[0])
			if err != nil {
				return nil, err
			}
			names, err := o.Cat.Tables(source)
			if err != nil {
				return nil, runtimeErr(nql.ErrValue, line, err)
			}
			return stringsToList(names), nil
		}), true
	default:
		return nil, false
	}
}

// PlanObject is an immutable logical-plan handle. Every chaining method
// returns a new handle sharing the parent subtree, so plans compose like
// frames do.
type PlanObject struct {
	Cat  *federate.Catalog
	Plan federate.Node
}

// TypeName implements nql.Object.
func (p *PlanObject) TypeName() string { return "plan" }

// String renders the (unoptimized) operator tree.
func (p *PlanObject) String() string { return "plan:\n" + federate.Explain(p.Plan) }

func (p *PlanObject) derive(n federate.Node) *PlanObject {
	return &PlanObject{Cat: p.Cat, Plan: n}
}

func (p *PlanObject) execute(in *nql.Interp, line int) (*federate.Relation, error) {
	rel, err := federate.RunContext(in.Context(), p.Cat, p.Plan)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, nql.CancelError(line, err)
		}
		class := nql.ErrValue
		// Imaginary columns surface as attribute errors, matching the
		// failure taxonomy of the per-substrate bindings.
		if strings.Contains(err.Error(), "does not exist") || strings.Contains(err.Error(), "unknown column") {
			class = nql.ErrAttr
		}
		return nil, runtimeErr(class, line, err)
	}
	return rel, nil
}

// Member implements nql.Object. Plan handles are created per chain step,
// so methods are built on demand without memoization.
func (p *PlanObject) Member(name string) (nql.Value, bool) {
	switch name {
	case "filter":
		return method("filter", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			if len(args) != 3 {
				return nil, argCount(line, "filter", "3 (col, op, value)", len(args))
			}
			col, err := wantString(line, "filter", "col", args[0])
			if err != nil {
				return nil, err
			}
			op, err := wantString(line, "filter", "op", args[1])
			if err != nil {
				return nil, err
			}
			if !federate.ValidOp(op) {
				return nil, &nql.RuntimeError{Class: nql.ErrArg, Line: line,
					Msg: "filter() op must be one of ==, !=, <, <=, >, >=, contains, prefix"}
			}
			switch args[2].(type) {
			case nil, bool, int64, float64, string:
			default:
				return nil, &nql.RuntimeError{Class: nql.ErrArg, Line: line,
					Msg: "filter() value must be a scalar, got " + nql.TypeName(args[2])}
			}
			return p.derive(&federate.Filter{Input: p.Plan, Pred: federate.Cmp{Col: col, Op: op, Value: args[2]}}), nil
		}), true
	case "where":
		return method("where", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			if len(args) != 1 {
				return nil, argCount(line, "where", "1", len(args))
			}
			fn := args[0]
			pred := federate.FuncPred{Fn: func(row *nql.Map) (bool, error) {
				v, err := in.Call(fn, []nql.Value{row}, line)
				if err != nil {
					return false, err
				}
				return nql.Truthy(v), nil
			}}
			// Carry the semantic analyzer's proof onto the plan: a pure,
			// row-total single-parameter lambda cannot fail or observe
			// side effects on any row, so the pipeline classifier may
			// ignore it (federate.FuncPred.NoErr). Programs that skipped
			// analysis simply have a zero stamp and stay conservative.
			if cl, ok := fn.(*nql.Closure); ok && cl.NumParams() == 1 {
				if e := cl.Effect(); e.Pure() && e.RowTotal() {
					pred.NoErr = true
				}
			}
			return p.derive(&federate.Filter{Input: p.Plan, Pred: pred}), nil
		}), true
	case "project", "select":
		return method(name, func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			cols, err := colsFromArgs(line, name, args)
			if err != nil {
				return nil, err
			}
			return p.derive(&federate.Project{Input: p.Plan, Cols: cols}), nil
		}), true
	case "join":
		return method("join", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			if len(args) != 3 {
				return nil, argCount(line, "join", "3 (plan, left_key, right_key)", len(args))
			}
			other, ok := args[0].(*PlanObject)
			if !ok {
				return nil, &nql.RuntimeError{Class: nql.ErrArg, Line: line,
					Msg: "join() first argument must be a plan, got " + nql.TypeName(args[0])}
			}
			lk, err := wantString(line, "join", "left_key", args[1])
			if err != nil {
				return nil, err
			}
			rk, err := wantString(line, "join", "right_key", args[2])
			if err != nil {
				return nil, err
			}
			return p.derive(&federate.Join{Left: p.Plan, Right: other.Plan, LeftKey: lk, RightKey: rk}), nil
		}), true
	case "agg", "aggregate":
		return method(name, func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			if len(args) < 2 {
				return nil, argCount(line, name, "2+ (group_cols, spec...)", len(args))
			}
			group, err := stringListArg(line, name, "group_cols", args[0])
			if err != nil {
				return nil, err
			}
			specs := make([]federate.AggSpec, 0, len(args)-1)
			for _, a := range args[1:] {
				l, ok := a.(*nql.List)
				if !ok || len(l.Items) != 3 {
					return nil, &nql.RuntimeError{Class: nql.ErrArg, Line: line,
						Msg: name + "() specs must be [col, fn, name] lists"}
				}
				col, err := wantString(line, name, "spec col", l.Items[0])
				if err != nil {
					return nil, err
				}
				fn, err := wantString(line, name, "spec fn", l.Items[1])
				if err != nil {
					return nil, err
				}
				as, err := wantString(line, name, "spec name", l.Items[2])
				if err != nil {
					return nil, err
				}
				specs = append(specs, federate.AggSpec{Col: col, Fn: fn, As: as})
			}
			return p.derive(&federate.Aggregate{Input: p.Plan, GroupBy: group, Aggs: specs}), nil
		}), true
	case "sort", "sort_values":
		return method(name, func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			if len(args) < 1 {
				return nil, argCount(line, name, "1+", len(args))
			}
			ascending := true
			colArgs := args
			if b, ok := args[len(args)-1].(bool); ok {
				ascending = b
				colArgs = args[:len(args)-1]
			}
			cols, err := colsFromArgs(line, name, colArgs)
			if err != nil {
				return nil, err
			}
			return p.derive(&federate.Sort{Input: p.Plan, Cols: cols, Ascending: ascending}), nil
		}), true
	case "limit", "head":
		return method(name, func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			if len(args) != 1 {
				return nil, argCount(line, name, "1", len(args))
			}
			n, err := wantInt(line, name, "n", args[0])
			if err != nil {
				return nil, err
			}
			return p.derive(&federate.Limit{Input: p.Plan, N: int(n)}), nil
		}), true
	case "collect", "records":
		return method(name, func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			if len(args) != 0 {
				return nil, argCount(line, name, "0", len(args))
			}
			rel, err := p.execute(in, line)
			if err != nil {
				return nil, err
			}
			return rel.Value(), nil
		}), true
	case "count", "num_rows":
		return method(name, func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			if len(args) != 0 {
				return nil, argCount(line, name, "0", len(args))
			}
			rel, err := p.execute(in, line)
			if err != nil {
				return nil, err
			}
			return int64(rel.NumRows()), nil
		}), true
	case "cell":
		return method("cell", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			if len(args) != 2 {
				return nil, argCount(line, "cell", "2", len(args))
			}
			i, err := wantInt(line, "cell", "row", args[0])
			if err != nil {
				return nil, err
			}
			col, err := wantString(line, "cell", "col", args[1])
			if err != nil {
				return nil, err
			}
			rel, err := p.execute(in, line)
			if err != nil {
				return nil, err
			}
			f := rel.Frame()
			v, cerr := f.Cell(int(i), col)
			if cerr != nil {
				return nil, runtimeErr(nql.ErrIndex, line, cerr)
			}
			return v, nil
		}), true
	case "to_frame":
		return method("to_frame", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			if len(args) != 0 {
				return nil, argCount(line, "to_frame", "0", len(args))
			}
			rel, err := p.execute(in, line)
			if err != nil {
				return nil, err
			}
			return NewFrameObject(rel.Frame()), nil
		}), true
	case "explain":
		return method("explain", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			if len(args) != 0 {
				return nil, argCount(line, "explain", "0", len(args))
			}
			return federate.Prepare(p.Cat, p.Plan).Explain(), nil
		}), true
	case "explain_analyze":
		// EXPLAIN ANALYZE: execute the optimized plan under a fresh
		// operator profile (layered over the request context, so
		// cancellation and any request-level profile keep working) and
		// render the tree with per-operator rows and wall/own time.
		return method("explain_analyze", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			if len(args) != 0 {
				return nil, argCount(line, "explain_analyze", "0", len(args))
			}
			prof := obs.NewProfile()
			ctx := obs.WithProfile(in.Context(), prof)
			if _, err := federate.RunContext(ctx, p.Cat, p.Plan); err != nil {
				if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
					return nil, nql.CancelError(line, err)
				}
				return nil, runtimeErr(nql.ErrValue, line, err)
			}
			return strings.TrimRight(prof.String(), "\n"), nil
		}), true
	default:
		return nil, false
	}
}

// stringListArg accepts a list of strings (or a single string, lifted to a
// one-element list).
func stringListArg(line int, fname, param string, v nql.Value) ([]string, error) {
	if s, ok := v.(string); ok {
		return []string{s}, nil
	}
	l, ok := v.(*nql.List)
	if !ok {
		return nil, &nql.RuntimeError{Class: nql.ErrArg, Line: line,
			Msg: fname + "() " + param + " must be a string or list of strings, got " + nql.TypeName(v)}
	}
	out := make([]string, 0, len(l.Items))
	for _, it := range l.Items {
		s, err := wantString(line, fname, param, it)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

package nqlbind

import (
	"context"
	"errors"

	"repro/internal/nql"
	"repro/internal/sqldb"
)

// DBObject wraps a sqldb.DB for NQL scripts: db.query("SELECT ...") returns
// a frame, db.exec("UPDATE ...") returns the affected-row count. SQL syntax
// errors inside the string surface as NQL operation errors carrying the SQL
// parser's message, so the benchmark can classify them.
type DBObject struct {
	DB *sqldb.DB

	// methods memoizes bound-method values per name (single-run ownership,
	// like GraphObject.methods).
	methods map[string]nql.Value
}

// NewDBObject wraps db.
func NewDBObject(db *sqldb.DB) *DBObject { return &DBObject{DB: db} }

// TypeName implements nql.Object.
func (o *DBObject) TypeName() string { return "database" }

// Member implements nql.Object, memoizing bound methods per name.
func (o *DBObject) Member(name string) (nql.Value, bool) {
	if v, ok := o.methods[name]; ok {
		return v, true
	}
	v, ok := o.member(name)
	if ok {
		if o.methods == nil {
			o.methods = make(map[string]nql.Value, 4)
		}
		o.methods[name] = v
	}
	return v, ok
}

func (o *DBObject) member(name string) (nql.Value, bool) {
	switch name {
	case "tables":
		return method("tables", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			return stringsToList(o.DB.TableNames()), nil
		}), true
	case "table":
		return method("table", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			if len(args) != 1 {
				return nil, argCount(line, "table", "1", len(args))
			}
			name, err := wantString(line, "table", "name", args[0])
			if err != nil {
				return nil, err
			}
			f, err := o.DB.Table(name)
			if err != nil {
				return nil, runtimeErr(nql.ErrName, line, err)
			}
			return NewFrameObject(f), nil
		}), true
	case "query":
		return method("query", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			if len(args) != 1 {
				return nil, argCount(line, "query", "1", len(args))
			}
			sql, err := wantString(line, "query", "sql", args[0])
			if err != nil {
				return nil, err
			}
			f, err := o.DB.QueryContext(in.Context(), sql)
			if err != nil {
				return nil, sqlErrToNQL(line, err)
			}
			return NewFrameObject(f), nil
		}), true
	case "exec":
		return method("exec", func(in *nql.Interp, line int, args []nql.Value) (nql.Value, error) {
			if len(args) != 1 {
				return nil, argCount(line, "exec", "1", len(args))
			}
			sql, err := wantString(line, "exec", "sql", args[0])
			if err != nil {
				return nil, err
			}
			res, err := o.DB.ExecContext(in.Context(), sql)
			if err != nil {
				return nil, sqlErrToNQL(line, err)
			}
			if res.Frame != nil {
				return NewFrameObject(res.Frame), nil
			}
			return res.Affected, nil
		}), true
	default:
		return nil, false
	}
}

// sqlErrToNQL maps SQL engine failures onto NQL error classes: parse errors
// stay "operation" errors with an embedded syntax message (the script itself
// is well-formed NQL; its payload SQL is bad), unknown tables/columns map to
// the attribute class, and statements abandoned by a cancelled host context
// surface as the cancel class so callers can tell shed work from bad SQL.
func sqlErrToNQL(line int, err error) error {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return nql.CancelError(line, err)
	}
	if _, ok := err.(*sqldb.SyntaxError); ok {
		return &nql.RuntimeError{Class: nql.ErrOp, Line: line, Msg: err.Error()}
	}
	msg := err.Error()
	if containsAny(msg, "does not exist", "unknown column", "ambiguous") {
		return &nql.RuntimeError{Class: nql.ErrAttr, Line: line, Msg: msg}
	}
	return &nql.RuntimeError{Class: nql.ErrOp, Line: line, Msg: msg}
}

func containsAny(s string, subs ...string) bool {
	for _, sub := range subs {
		if len(sub) > 0 && len(s) >= len(sub) && indexOf(s, sub) >= 0 {
			return true
		}
	}
	return false
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// Package service implements netqueryd, a fault-tolerant multi-tenant
// network-query service over the evaluation framework's datasets. Every
// request executes a sandboxed NQL program against a fresh clone of the
// current dataset epoch's frozen master, under a propagated
// context.Context deadline that the NQL VM, the federated executor and the
// SQL engine all honor at cooperative checkpoints.
//
// The service stays correct and responsive under faults and overload:
//
//   - Admission control: per-tenant token buckets (requests/sec) and
//     concurrency gauges shed over-budget work immediately with a
//     Retry-After hint instead of queueing it, so one tenant's burst
//     cannot grow everyone else's tail latency.
//   - Deadlines: each request's deadline rides its context through every
//     execution layer; a deadline-exceeded query returns within one VM
//     dispatch quantum, not after the query finishes.
//   - Circuit breaking: a per-substrate breaker trips after consecutive
//     timeouts and reroutes catalog queries to the cheapest healthy
//     substrate until a cooldown passes.
//   - Live dataset swap: Swap loads a new frozen master, atomically flips
//     new arrivals onto it, and drains the old epoch — zero queries are
//     dropped and every response is consistent with exactly one epoch.
//   - Graceful drain: Drain stops admission and waits for in-flight work,
//     so a shutdown never kills a running query.
//
// # Runbook: flags
//
// cmd/netqueryd exposes every Config knob as a flag:
//
//	-addr :8090               listen address
//	-app traffic              initial dataset (traffic, malt, diagnosis)
//	-nodes 80 -edges 80       traffic graph scale
//	-seed 42                  traffic workload seed
//	-tenant-rps 50            per-tenant admitted requests/sec
//	-tenant-burst 16          per-tenant request burst
//	-tenant-concurrency 8     per-tenant in-flight cap (-1 unlimited)
//	-default-timeout 2s       deadline for requests that name none
//	-max-timeout 10s          cap on client-requested deadlines
//	-breaker-threshold 5      consecutive timeouts tripping a breaker
//	-breaker-cooldown 1s      how long a tripped breaker stays open
//	-drain-timeout 30s        shutdown drain budget
//	-slo-availability 0.999   availability objective target (-1 disables)
//	-slo-latency-target 0.99  latency objective quantile target
//	-slo-latency-threshold 250ms  latency per-request budget (-1ns disables)
//	-slo-tick 10s             health tick (SLO window sampling) interval
//	-flight-capacity 256      flight recorder ring size (-1 disables)
//	-flight-sample 64         sample one normal request per this many
//	-flight-slow-factor 4     dynamic slow threshold = tenant p99 x factor
//
// Endpoints: POST /v1/query runs one query ({"tenant", "query" or
// "query_id", optional "backend", "timeout_ms"}); POST /admin/swap
// installs a new dataset; GET /healthz reports the live epoch and breaker
// states (?verbose=1 adds SLO, cache and flight detail); GET /statsz dumps
// counters; GET /sloz, /flightz, /tracez, /metricsz and /debugz/bundle are
// the health and evidence surfaces described below.
//
// # Runbook: admission tuning
//
// Admission is two independent gates per tenant, checked before any work
// is done. The token bucket (-tenant-rps / -tenant-burst) bounds offered
// rate: a request that finds no token is shed with HTTP 429 and a
// Retry-After header naming when a token will exist — it is never queued,
// so shed requests cost microseconds and cannot build a backlog. The
// concurrency gauge (-tenant-concurrency) bounds in-flight work, which is
// what actually protects tail latency when queries are slow rather than
// frequent. Size the bucket for the tenant's contract (rps = sustained
// rate, burst = tolerated spike) and the gauge for query weight: long
// analytical queries warrant a small gauge (2-4); sub-millisecond catalog
// lookups tolerate a large one. A 429 spike with healthy /statsz latency
// means the budget is too small; rising p99 with no sheds means it is too
// large (work is queueing inside the substrates, tighten the gauge).
//
// # Runbook: swap procedure
//
// POST /admin/swap with {"app": "traffic", "nodes": N, "edges": E,
// "seed": S} (or "malt"/"diagnosis"). The service builds the new frozen
// master before touching live traffic — a swap that fails to build leaves
// the old epoch serving. It then atomically flips new arrivals onto the
// new epoch and waits for the old epoch's in-flight queries to drain
// before releasing it. In-flight queries finish on the epoch they started
// on; every response names its epoch in "dataset". The call returns only
// after the old epoch has fully drained, so back-to-back swaps serialize.
// Verify with GET /healthz ("dataset") and Stats().Swaps.
//
// # Runbook: breaker semantics
//
// Each execution substrate (networkx, pandas, sql, federated) has an
// independent breaker. Only the service's own deadline expiries count as
// substrate timeouts — client disconnects and NQL errors do not.
// After -breaker-threshold consecutive timeouts the breaker opens: catalog
// queries (query_id) reroute to the cheapest healthy substrate that has a
// golden program for them, in cost order networkx < pandas < sql <
// federated; raw-program requests pinned to an open substrate fail fast
// with HTTP 503. After -breaker-cooldown the breaker half-opens and
// admits one probe: a success closes it, another timeout re-opens it for
// a fresh cooldown. Breaker states are visible in /healthz and trip
// counts in /statsz. A breaker that flaps open on a healthy substrate
// usually means -default-timeout is too tight for the dataset scale.
//
// # Runbook: metrics, traces and query profiles
//
// GET /metricsz exposes the service's obs registry in Prometheus text
// format: netqueryd_results_total{result=ok|shed|timeout|disconnect|error}
// splits outcomes (client hangups are "disconnect", never conflated with
// server-side "timeout" — only the latter feeds the breakers);
// netqueryd_inflight gauges admitted concurrency; per-tenant series
// (netqueryd_tenant_requests_total, _shed_total, and the
// netqueryd_tenant_latency_ns histogram) attribute load and latency to
// tenants; per-backend series (netqueryd_backend_requests_total,
// _latency_ns) do the same per substrate. Histogram buckets are
// log-spaced with ~3% relative error; _sum/_count give exact means.
//
// Request tracing is off by default. -trace-sample F traces roughly one
// in 1/F arrivals (1 traces everything) into a 32-entry ring served as
// JSON at GET /tracez; each trace holds query/bind/execute spans with
// wall and own (self) nanoseconds plus tenant/backend/query_id tags.
// Profiled requests are always traced regardless of the sample rate.
//
// For one slow query, POST /v1/query with "profile": true. The response's
// "profile" object carries: "operators" — the federated plan's EXPLAIN
// ANALYZE tree (operator, detail, depth, rows, wall_ns, own_ns; sqldb
// contributes nested sql.select/sql.scan/sql.join/sql.filter frames);
// "vm" — the NQL VM's opcode-class counts with sampled time attribution
// and exact builtin call/time/alloc stats; "spans" — the request's span
// tree; and "trace_id" to correlate with /tracez. Rows of -1 mark frames
// that failed. High sql.scan rows with low final rows suggests a missing
// pushdown; wall >> own on a frame means the time is in its children.
// -pprof additionally mounts Go's /debug/pprof handlers for CPU and heap
// profiling of the process itself.
//
// # Runbook: SLOs and burn-rate alerts (/sloz)
//
// The service declares two objectives per tenant and per backend, over the
// sliding windows internal/obs/health maintains: availability (the
// -slo-availability fraction of executed requests that must not fail
// server-side — timeouts and execution errors burn budget; sheds, client
// disconnects and vet rejects do not, those are the service working as
// intended) and latency (the -slo-latency-target quantile must finish
// under -slo-latency-threshold). A background tick (-slo-tick) samples
// every objective's cumulative tallies; burn rates are computed over
// Google-SRE multiwindow pairs — page on burn >= 14.4 over both 5m and 1h,
// ticket on burn >= 6 over both 30m and 6h — and alerts clear with
// hysteresis once the short window's burn drops below 90% of its
// threshold. GET /sloz renders targets, per-window totals/bad/burn and
// alert states in deterministic Prometheus text; /healthz?verbose=1 folds
// in the same evaluation as JSON plus a firing count.
//
// When /sloz pages: a page pair burning means the error budget is going
// NOW (a 14.4x burn exhausts a 30-day budget in ~2 days); the ticket pair
// firing alone is slow budget leakage. Go to /flightz for the offenders.
//
// # Runbook: flight recorder (/flightz)
//
// The flight recorder is an always-on bounded ring (-flight-capacity) of
// notable requests, recorded with zero allocations on the hot path: every
// error (classed static, shed, breaker-open, draining, timeout,
// disconnect, error), every slow success (over the tenant's dynamic
// threshold: p99 x -flight-slow-factor, floored and capped by the SLO
// latency budget), and one sampled normal per -flight-sample as workload
// context. Each record carries tenant, backend, query_id, the NQL
// program's source hash, the federated plan fingerprint(s) it executed,
// the trace ID when traced, and the queue/execute/total latency split.
// GET /flightz renders one record per line (?format=json for the array),
// filterable by ?tenant=, ?backend=, ?class= and ?min_ns=. The program
// hash matches the sandbox bytecode cache's identity and the plan
// fingerprint matches the federated plan cache's Explain identity, so a
// flight record reproduces as: look up the program, Explain the plan.
//
// The evidence chain from an alert: /sloz names the burning series
// (tenant or backend) → /flightz?tenant=X&class=timeout lists the exact
// requests with program hashes and plan fingerprints → their trace= IDs
// resolve in /tracez (?tenant=, ?backend=, ?min_ns= filter; ?format=text
// renders span trees) → /metricsz histogram buckets carry OpenMetrics
// trace-ID exemplars linking latency bands back to the same traces.
//
// # Runbook: diagnostic bundle (/debugz/bundle)
//
// GET /debugz/bundle (or netqueryd -dump-bundle, which builds the service,
// writes one bundle to stdout and exits) captures the whole story in one
// deterministically-ordered JSON blob: stats, breaker states in substrate
// cost order, SLO evaluations, flight records, retained traces, per-tenant
// admission state (bucket/gauge levels, latency quantiles, slow
// threshold), plan/program/vet cache hit rates, and a Go runtime summary.
// Attach it to incident reports; two bundles diff cleanly. Hosts embedding
// the service add sections via Service.RegisterBundleSection (e.g. a model
// gateway's StateSnapshot), which land under "extra".
package service

package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestQueryProfileFederatedOperators posts a raw federated query with
// "profile": true over HTTP and checks the response carries a per-operator
// execution profile (operator name, row counts, wall time) plus the VM
// opcode-class breakdown and the request's span tree.
func TestQueryProfileFederatedOperators(t *testing.T) {
	s := newTestService(t, nil)
	h := NewHandler(s)

	body := []byte(`{"tenant":"acme","query":"return fed.scan(\"sql\", \"edges\").filter(\"bytes\", \">\", 0).count()","profile":true}`)
	req := httptest.NewRequest(http.MethodPost, "/v1/query", bytes.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d body %s, want 200", w.Code, w.Body)
	}
	var resp queryResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if resp.Profile == nil {
		t.Fatalf("no profile in response: %s", w.Body)
	}
	if resp.Profile.TraceID == "" || !strings.HasPrefix(resp.Profile.TraceID, "acme-") {
		t.Fatalf("trace id = %q, want acme-<n>", resp.Profile.TraceID)
	}
	ops := map[string]bool{}
	for _, st := range resp.Profile.Operators {
		ops[st.Op] = true
		if st.WallNS < 0 || st.WallNS < st.OwnNS {
			t.Fatalf("operator %q wall=%d own=%d inconsistent", st.Op, st.WallNS, st.OwnNS)
		}
	}
	// The optimizer pushes the filter into the scan, so the profile shows
	// a predicate-annotated scan with the sqldb frames nested under it.
	for _, want := range []string{"scan", "sql.select", "sql.scan"} {
		if !ops[want] {
			t.Fatalf("operator profile missing %q: %+v", want, resp.Profile.Operators)
		}
	}
	if resp.Profile.VM == nil || len(resp.Profile.VM.Opcodes) == 0 {
		t.Fatalf("no VM opcode profile: %+v", resp.Profile.VM)
	}
	spans := map[string]bool{}
	for _, sp := range resp.Profile.Spans {
		spans[sp.Name] = true
	}
	for _, want := range []string{"query", "bind", "execute"} {
		if !spans[want] {
			t.Fatalf("span tree missing %q: %+v", want, resp.Profile.Spans)
		}
	}
	// Unprofiled requests must not pay for or carry a profile.
	w2 := postJSON(t, h, "/v1/query", queryRequest{Tenant: "acme", QueryID: "ta-e2"})
	var resp2 queryResponse
	if err := json.Unmarshal(w2.Body.Bytes(), &resp2); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if resp2.Profile != nil {
		t.Fatalf("unprofiled request carried a profile: %+v", resp2.Profile)
	}
}

// TestQueryProfileVMOpcodeClasses checks an NQL-executed (non-federated)
// profiled query reports opcode-class counts and builtin timings.
func TestQueryProfileVMOpcodeClasses(t *testing.T) {
	s := newTestService(t, nil)
	resp, err := s.Do(context.Background(), &Request{
		Tenant:  "acme",
		QueryID: "ta-e2",
		Profile: true,
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if resp.Profile == nil || resp.Profile.VM == nil {
		t.Fatalf("no VM profile: %+v", resp.Profile)
	}
	var total int64
	for _, c := range resp.Profile.VM.Opcodes {
		total += c.Count
	}
	if total == 0 {
		t.Fatalf("opcode classes all zero: %+v", resp.Profile.VM.Opcodes)
	}
}

// TestMetricszExposition checks /metricsz renders per-tenant request
// counters and latency histogram buckets in Prometheus text format.
func TestMetricszExposition(t *testing.T) {
	s := newTestService(t, nil)
	h := NewHandler(s)

	for i := 0; i < 3; i++ {
		if w := postJSON(t, h, "/v1/query", queryRequest{Tenant: "acme", QueryID: "ta-e2"}); w.Code != http.StatusOK {
			t.Fatalf("query %d: status = %d", i, w.Code)
		}
	}
	if w := postJSON(t, h, "/v1/query", queryRequest{Tenant: "globex", QueryID: "ta-e2"}); w.Code != http.StatusOK {
		t.Fatalf("globex query failed")
	}

	req := httptest.NewRequest(http.MethodGet, "/metricsz", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("/metricsz status = %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q, want text/plain", ct)
	}
	body := w.Body.String()
	for _, line := range []string{
		`netqueryd_tenant_requests_total{tenant="acme"} 3`,
		`netqueryd_tenant_requests_total{tenant="globex"} 1`,
		`netqueryd_results_total{result="ok"} 4`,
		`# TYPE netqueryd_tenant_latency_ns histogram`,
		`netqueryd_tenant_latency_ns_bucket{tenant="acme",le="+Inf"} 3`,
		`netqueryd_tenant_latency_ns_count{tenant="acme"} 3`,
	} {
		if !strings.Contains(body, line) {
			t.Fatalf("/metricsz missing %q:\n%s", line, body)
		}
	}
	if !strings.Contains(body, `netqueryd_tenant_latency_ns_bucket{tenant="acme",le="`) {
		t.Fatalf("no latency buckets in exposition:\n%s", body)
	}
}

// TestTraceSamplingRing checks -trace-sample wiring: with sampling at 1.0
// every request is traced into the ring; with 0 only profiled requests are.
func TestTraceSamplingRing(t *testing.T) {
	s := newTestService(t, func(c *Config) { c.TraceSample = 1.0 })
	for i := 0; i < 5; i++ {
		if _, err := s.Do(context.Background(), &Request{Tenant: "t", QueryID: "ta-e2"}); err != nil {
			t.Fatalf("Do: %v", err)
		}
	}
	if got := len(s.RecentTraces()); got != 5 {
		t.Fatalf("traced %d requests at sample=1.0, want 5", got)
	}

	off := newTestService(t, nil) // TraceSample defaults to 0: tracing off
	if _, err := off.Do(context.Background(), &Request{Tenant: "t", QueryID: "ta-e2"}); err != nil {
		t.Fatalf("Do: %v", err)
	}
	if got := len(off.RecentTraces()); got != 0 {
		t.Fatalf("traced %d requests with sampling off, want 0", got)
	}
	// Profiled requests are always traced, even with sampling off.
	if _, err := off.Do(context.Background(), &Request{Tenant: "t", QueryID: "ta-e2", Profile: true}); err != nil {
		t.Fatalf("Do: %v", err)
	}
	if got := len(off.RecentTraces()); got != 1 {
		t.Fatalf("profiled request not traced: ring has %d", got)
	}
}

// TestTracezEndpoint checks the /tracez JSON dump of the trace ring.
func TestTracezEndpoint(t *testing.T) {
	s := newTestService(t, func(c *Config) { c.TraceSample = 1.0 })
	h := NewHandler(s)
	if w := postJSON(t, h, "/v1/query", queryRequest{Tenant: "acme", QueryID: "ta-e2"}); w.Code != http.StatusOK {
		t.Fatalf("query failed: %d", w.Code)
	}
	req := httptest.NewRequest(http.MethodGet, "/tracez", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("/tracez status = %d", w.Code)
	}
	var traces []struct {
		ID    string `json:"id"`
		Spans []struct {
			Name   string `json:"name"`
			WallNS int64  `json:"wall_ns"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &traces); err != nil {
		t.Fatalf("decode /tracez: %v\n%s", err, w.Body)
	}
	if len(traces) != 1 || len(traces[0].Spans) == 0 {
		t.Fatalf("tracez = %+v, want one trace with spans", traces)
	}
	if traces[0].Spans[0].Name != "query" {
		t.Fatalf("root span = %q, want query", traces[0].Spans[0].Name)
	}
}

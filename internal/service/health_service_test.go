package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/modelserve"
	"repro/internal/obs"
)

// fedQuery is a raw federated program: it executes a federated plan, so its
// flight records carry a plan fingerprint.
const fedQuery = `return fed.scan("sql", "nodes").count()`

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
	return w
}

// TestMetricszCacheCounterNames pins the cache metric families the PR adds
// to /metricsz: renaming any of them breaks dashboards, so the full names
// are asserted literally.
func TestMetricszCacheCounterNames(t *testing.T) {
	s := newTestService(t, nil)
	h := NewHandler(s)
	// Same raw program twice: the second request must hit the vet cache.
	for i := 0; i < 2; i++ {
		if w := postJSON(t, h, "/v1/query", queryRequest{Tenant: "acme", Query: fedQuery}); w.Code != http.StatusOK {
			t.Fatalf("query %d: status %d body %s", i, w.Code, w.Body)
		}
	}
	// One server-side timeout, so the error counters are non-zero.
	if _, err := s.Do(context.Background(), &Request{Tenant: "acme", Query: spinQuery, Timeout: 20 * time.Millisecond}); err == nil {
		t.Fatalf("spin query did not time out")
	}

	body := get(t, h, "/metricsz").Body.String()
	for _, want := range []string{
		"# TYPE netqueryd_plan_cache_hits_total counter",
		"# TYPE netqueryd_plan_cache_misses_total counter",
		"# TYPE netqueryd_plan_cache_entries gauge",
		"# TYPE netqueryd_program_cache_hits_total counter",
		"# TYPE netqueryd_program_cache_misses_total counter",
		"# TYPE netqueryd_program_cache_entries gauge",
		"# TYPE netqueryd_vet_cache_hits_total counter",
		"# TYPE netqueryd_vet_cache_misses_total counter",
		"# TYPE netqueryd_vet_cache_entries gauge",
		`netqueryd_tenant_errors_total{tenant="acme"} 1`,
		`netqueryd_backend_errors_total{backend="federated"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metricsz missing %q", want)
		}
	}
	if hits, misses, entries := s.VetCacheStats(); hits < 1 || misses < 1 || entries < 1 {
		t.Fatalf("vet cache stats = %d/%d/%d, want hits, misses and entries all >= 1", hits, misses, entries)
	}

	// Scraping twice without traffic must not change the synced counters:
	// the delta sync is idempotent.
	pick := func(body, name string) string {
		for _, line := range strings.Split(body, "\n") {
			if strings.HasPrefix(line, name+" ") {
				return line
			}
		}
		t.Fatalf("no %s sample in /metricsz", name)
		return ""
	}
	again := get(t, h, "/metricsz").Body.String()
	for _, name := range []string{
		"netqueryd_vet_cache_hits_total",
		"netqueryd_vet_cache_misses_total",
		"netqueryd_plan_cache_entries",
	} {
		if a, b := pick(body, name), pick(again, name); a != b {
			t.Fatalf("rescrape moved %s: %q -> %q", name, a, b)
		}
	}
}

// TestFlightzEndpoint drives slow-classed and sampled requests through the
// recorder and checks the /flightz text rendering, JSON mode, and filters.
func TestFlightzEndpoint(t *testing.T) {
	s := newTestService(t, func(c *Config) {
		c.SLOLatencyThreshold = 1 // 1ns: every completed request is "slow"
		c.TraceSample = 1
	})
	h := NewHandler(s)
	if w := postJSON(t, h, "/v1/query", queryRequest{Tenant: "acme", Query: fedQuery}); w.Code != http.StatusOK {
		t.Fatalf("federated query: %d %s", w.Code, w.Body)
	}
	if w := postJSON(t, h, "/v1/query", queryRequest{Tenant: "beta", QueryID: "ta-e2"}); w.Code != http.StatusOK {
		t.Fatalf("catalog query: %d %s", w.Code, w.Body)
	}

	text := get(t, h, "/flightz").Body.String()
	for _, want := range []string{
		"tenant=acme backend=federated class=slow result=ok",
		"plan=",        // the federated request noted its plan fingerprint
		"trace=acme-",  // and its trace ID
		"tenant=beta ", // the catalog request is there too
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/flightz missing %q:\n%s", want, text)
		}
	}

	var recs []obs.FlightRecord
	if err := json.Unmarshal(get(t, h, "/flightz?tenant=acme&format=json").Body.Bytes(), &recs); err != nil {
		t.Fatalf("decode /flightz json: %v", err)
	}
	if len(recs) != 1 || recs[0].Tenant != "acme" || recs[0].Class != "slow" {
		t.Fatalf("tenant filter returned %+v, want one slow acme record", recs)
	}
	if recs[0].PlanFP == "" || recs[0].TraceID == "" || recs[0].ProgramHash == "" {
		t.Fatalf("federated record lacks provenance: %+v", recs[0])
	}
	if recs[0].TotalNS < recs[0].ExecNS || recs[0].QueueNS != recs[0].TotalNS-recs[0].ExecNS {
		t.Fatalf("latency split inconsistent: %+v", recs[0])
	}
	if err := json.Unmarshal(get(t, h, "/flightz?min_ns=4611686018427387904&format=json").Body.Bytes(), &recs); err != nil {
		t.Fatalf("decode filtered /flightz: %v", err)
	}
	if len(recs) != 0 {
		t.Fatalf("absurd min_ns still matched %d records", len(recs))
	}

	// A disabled recorder serves a comment, and an empty JSON array.
	off := NewHandler(newTestService(t, func(c *Config) { c.FlightCapacity = -1 }))
	if got := get(t, off, "/flightz").Body.String(); got != "# flight recorder disabled\n" {
		t.Fatalf("disabled /flightz = %q", got)
	}
	if got := strings.TrimSpace(get(t, off, "/flightz?format=json").Body.String()); got != "[]" {
		t.Fatalf("disabled /flightz json = %q, want []", got)
	}
}

// TestDynamicSlowThreshold checks HealthTick's refresh rule: the threshold
// starts at the SLO latency budget, drops to p99 x factor for fast tenants
// once they have enough samples, stays put below the sample floor, and is
// capped by the SLO budget for slow tenants.
func TestDynamicSlowThreshold(t *testing.T) {
	s := newTestService(t, nil) // defaults: 250ms budget, factor 4
	floor := int64(250 * time.Millisecond)

	fast := s.tenantState("fast")
	for i := 0; i < 100; i++ {
		fast.latency.Observe(1000)
	}
	sparse := s.tenantState("sparse")
	for i := 0; i < slowRefreshMinSamples-1; i++ {
		sparse.latency.Observe(1000)
	}
	slow := s.tenantState("slow")
	for i := 0; i < 100; i++ {
		slow.latency.Observe(int64(time.Second))
	}

	if got := fast.slowNS.Load(); got != floor {
		t.Fatalf("pre-tick threshold = %d, want the SLO budget %d", got, floor)
	}
	s.HealthTick()
	if got := fast.slowNS.Load(); got != 4000 {
		t.Fatalf("fast tenant threshold = %d, want p99 x 4 = 4000", got)
	}
	if got := sparse.slowNS.Load(); got != floor {
		t.Fatalf("sparse tenant threshold moved to %d with < %d samples", got, slowRefreshMinSamples)
	}
	if got := slow.slowNS.Load(); got != floor {
		t.Fatalf("slow tenant threshold = %d, want capped at the SLO budget %d", got, floor)
	}
}

// TestHealthzVerboseAndSloz checks the health surfaces: terse /healthz is
// unchanged, ?verbose=1 folds in SLO/cache/flight detail, and /sloz serves
// the burn-rate exposition (or a comment when disabled).
func TestHealthzVerboseAndSloz(t *testing.T) {
	s := newTestService(t, nil)
	h := NewHandler(s)
	if w := postJSON(t, h, "/v1/query", queryRequest{Tenant: "acme", QueryID: "ta-e2"}); w.Code != http.StatusOK {
		t.Fatalf("query: %d", w.Code)
	}

	var terse map[string]any
	if err := json.Unmarshal(get(t, h, "/healthz").Body.Bytes(), &terse); err != nil {
		t.Fatalf("decode /healthz: %v", err)
	}
	for _, forbidden := range []string{"slo", "caches", "flight_records", "tenants"} {
		if _, ok := terse[forbidden]; ok {
			t.Fatalf("terse /healthz grew a %q key: %v", forbidden, terse)
		}
	}

	var verbose map[string]any
	if err := json.Unmarshal(get(t, h, "/healthz?verbose=1").Body.Bytes(), &verbose); err != nil {
		t.Fatalf("decode verbose /healthz: %v", err)
	}
	for _, want := range []string{"slo", "slo_alerts_firing", "caches", "flight_records", "tenants"} {
		if _, ok := verbose[want]; !ok {
			t.Fatalf("verbose /healthz missing %q: %v", want, verbose)
		}
	}
	caches, _ := verbose["caches"].(map[string]any)
	for _, want := range []string{"plan", "program", "vet"} {
		if _, ok := caches[want]; !ok {
			t.Fatalf("verbose /healthz caches missing %q: %v", want, caches)
		}
	}

	sloz := get(t, h, "/sloz").Body.String()
	for _, want := range []string{
		"# TYPE netqueryd_slo_target gauge",
		`slo="availability"`,
		`slo="latency"`,
		`tenant="acme"`,
		`backend="federated"`,
	} {
		if !strings.Contains(sloz, want) {
			t.Errorf("/sloz missing %q", want)
		}
	}

	off := NewHandler(newTestService(t, func(c *Config) {
		c.SLOAvailability = -1
		c.SLOLatencyThreshold = -1
	}))
	if got := get(t, off, "/sloz").Body.String(); got != "# slo engine disabled\n" {
		t.Fatalf("disabled /sloz = %q", got)
	}
}

// TestTracezFiltersAndText checks the new /tracez query parameters and text
// mode, and that the parameterless response is still the plain JSON array.
func TestTracezFiltersAndText(t *testing.T) {
	s := newTestService(t, func(c *Config) { c.TraceSample = 1 })
	h := NewHandler(s)
	if w := postJSON(t, h, "/v1/query", queryRequest{Tenant: "acme", QueryID: "ta-e2"}); w.Code != http.StatusOK {
		t.Fatalf("catalog query: %d", w.Code)
	}
	if w := postJSON(t, h, "/v1/query", queryRequest{Tenant: "beta", Query: fedQuery}); w.Code != http.StatusOK {
		t.Fatalf("federated query: %d", w.Code)
	}

	type trace struct {
		ID    string         `json:"id"`
		Spans []obs.SpanStat `json:"spans"`
	}
	decode := func(path string) []trace {
		var out []trace
		if err := json.Unmarshal(get(t, h, path).Body.Bytes(), &out); err != nil {
			t.Fatalf("decode %s: %v", path, err)
		}
		return out
	}

	if all := decode("/tracez"); len(all) != 2 {
		t.Fatalf("/tracez has %d traces, want 2", len(all))
	}
	if got := decode("/tracez?tenant=acme"); len(got) != 1 || !strings.HasPrefix(got[0].ID, "acme-") {
		t.Fatalf("tenant filter returned %+v", got)
	}
	if got := decode("/tracez?backend=federated"); len(got) != 1 || !strings.HasPrefix(got[0].ID, "beta-") {
		t.Fatalf("backend filter returned %+v", got)
	}
	if got := decode("/tracez?min_ns=4611686018427387904"); len(got) != 0 {
		t.Fatalf("absurd min_ns still matched %d traces", len(got))
	}
	// No parameters and format=json must be byte-identical: the filters and
	// text mode are purely additive.
	if a, b := get(t, h, "/tracez").Body.String(), get(t, h, "/tracez?format=json").Body.String(); a != b {
		t.Fatalf("format=json diverged from the default output:\n%s\n---\n%s", a, b)
	}

	text := get(t, h, "/tracez?tenant=acme&format=text").Body.String()
	if !strings.HasPrefix(text, "trace acme-") {
		t.Fatalf("text mode output does not start with a trace header:\n%s", text)
	}
	for _, want := range []string{"  query wall_ns=", "tenant=acme", "    bind wall_ns=", "    execute wall_ns="} {
		if !strings.Contains(text, want) {
			t.Errorf("text mode missing %q:\n%s", want, text)
		}
	}
}

// TestDebugBundle checks the bundle's shape: deterministic ordering,
// provenance-bearing flight records, all three cache sections, and
// host-registered extra sections (a model gateway snapshot here).
func TestDebugBundle(t *testing.T) {
	s := newTestService(t, func(c *Config) {
		c.SLOLatencyThreshold = 1
		c.TraceSample = 1
	})
	h := NewHandler(s)
	if w := postJSON(t, h, "/v1/query", queryRequest{Tenant: "zeta", Query: fedQuery}); w.Code != http.StatusOK {
		t.Fatalf("query: %d", w.Code)
	}
	if w := postJSON(t, h, "/v1/query", queryRequest{Tenant: "acme", QueryID: "ta-e2"}); w.Code != http.StatusOK {
		t.Fatalf("query: %d", w.Code)
	}

	gw, err := modelserve.New(modelserve.Config{Provider: modelserve.NewSimProvider(), RPS: 10})
	if err != nil {
		t.Fatalf("modelserve.New: %v", err)
	}
	s.RegisterBundleSection("model_gateway", func() any { return gw.StateSnapshot() })

	b := s.DebugBundle()
	if len(b.Breakers) != len(substrateCost) {
		t.Fatalf("bundle has %d breakers, want %d", len(b.Breakers), len(substrateCost))
	}
	for i, br := range b.Breakers {
		if br.Backend != substrateCost[i] {
			t.Fatalf("breaker %d = %q, want substrate-cost order %v", i, br.Backend, substrateCost)
		}
	}
	if len(b.SLO) == 0 {
		t.Fatalf("bundle has no SLO states")
	}
	if len(b.Flight) == 0 {
		t.Fatalf("bundle has no flight records")
	}
	var sawProvenance bool
	for _, rec := range b.Flight {
		if rec.Tenant == "zeta" && rec.PlanFP != "" && rec.TraceID != "" {
			sawProvenance = true
		}
	}
	if !sawProvenance {
		t.Fatalf("no flight record carries plan fingerprint + trace ID: %+v", b.Flight)
	}
	if len(b.Traces) == 0 {
		t.Fatalf("bundle has no traces")
	}
	names := make([]string, len(b.Tenants))
	for i, ts := range b.Tenants {
		names[i] = ts.Tenant
	}
	if !sort.StringsAreSorted(names) {
		t.Fatalf("bundle tenants not sorted: %v", names)
	}
	for _, want := range []string{"plan", "program", "vet"} {
		if _, ok := b.Caches[want]; !ok {
			t.Fatalf("bundle caches missing %q: %v", want, b.Caches)
		}
	}
	if b.Runtime.Goroutines <= 0 || b.Runtime.HeapAlloc == 0 {
		t.Fatalf("bundle runtime summary empty: %+v", b.Runtime)
	}
	if _, ok := b.Extra["model_gateway"]; !ok {
		t.Fatalf("registered bundle section missing: %v", b.Extra)
	}
	for _, ts := range b.Tenants {
		if ts.Tenant == "zeta" && (ts.Completed != 1 || ts.Bucket.Rate != s.cfg.TenantRPS) {
			t.Fatalf("zeta tenant state inconsistent: %+v", ts)
		}
	}

	// The HTTP surface serves the same bundle as JSON.
	var viaHTTP map[string]any
	if err := json.Unmarshal(get(t, h, "/debugz/bundle").Body.Bytes(), &viaHTTP); err != nil {
		t.Fatalf("decode /debugz/bundle: %v", err)
	}
	for _, want := range []string{"captured_unix_ns", "stats", "breakers", "slo", "flight", "tenants", "caches", "runtime", "extra"} {
		if _, ok := viaHTTP[want]; !ok {
			t.Fatalf("/debugz/bundle missing %q", want)
		}
	}
}

// TestMetricszExemplarResolvesInTracez follows the evidence chain the
// runbook describes: a histogram bucket's exemplar names a trace ID that
// /tracez can serve.
func TestMetricszExemplarResolvesInTracez(t *testing.T) {
	s := newTestService(t, func(c *Config) { c.TraceSample = 1 })
	h := NewHandler(s)
	if w := postJSON(t, h, "/v1/query", queryRequest{Tenant: "acme", QueryID: "ta-e2"}); w.Code != http.StatusOK {
		t.Fatalf("query: %d", w.Code)
	}
	body := get(t, h, "/metricsz").Body.String()
	m := regexp.MustCompile(`# \{trace_id="(acme-\d+)"\}`).FindStringSubmatch(body)
	if m == nil {
		t.Fatalf("/metricsz carries no trace-ID exemplar:\n%s", body)
	}
	if !strings.Contains(get(t, h, "/tracez").Body.String(), `"id":"`+m[1]+`"`) {
		t.Fatalf("exemplar trace %q not resolvable in /tracez", m[1])
	}
}

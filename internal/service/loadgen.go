package service

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/traffic"
)

// LoadConfig tunes an open-loop load run against a Service. The generator
// fires arrivals on a fixed schedule regardless of completions (open loop:
// a slow service accumulates in-flight work instead of silently slowing
// the offered load), draws each arrival's tenant from a Zipf distribution
// (hub tenants dominate, like hub nodes dominate traffic graphs), and
// parameterizes raw queries from a traffic.Stream edge stream so no two
// arrivals are forced to be identical.
type LoadConfig struct {
	// Tenants is how many distinct tenants offer load (default 4).
	Tenants int
	// SkewAlpha > 1 draws tenants Zipf-skewed (smaller index = heavier);
	// 0 is uniform. Values in (0, 1] are rejected like traffic.Config.
	SkewAlpha float64
	// Rate is the aggregate arrival rate in requests/sec (default 200).
	Rate float64
	// Requests is the total number of arrivals (default 200).
	Requests int
	// QueryIDs cycles catalog queries round-robin. Empty means raw
	// federated queries parameterized from the edge stream.
	QueryIDs []string
	// Backend pins a substrate ("" = auto).
	Backend string
	// Timeout is the per-request deadline (0 = service default).
	Timeout time.Duration
	// Seed keys tenant/parameter draws so a load run is reproducible.
	Seed int64
	// Stream configures the parameter edge stream (zero value =
	// nemoeval.DefaultTrafficConfig scale).
	Stream traffic.Config
}

// LoadReport summarizes one load run.
type LoadReport struct {
	Sent     int
	OK       int
	Shed     int
	Timeouts int
	Failed   int // non-timeout failures

	P50, P99, Max time.Duration // latency over successful requests

	PerTenant map[string]int // arrivals offered per tenant
}

// String renders the one-line summary the daemon logs after a self-test.
func (r *LoadReport) String() string {
	return fmt.Sprintf("%d sent: %d ok, %d shed, %d timeout, %d failed; p50 %s p99 %s max %s",
		r.Sent, r.OK, r.Shed, r.Timeouts, r.Failed,
		r.P50.Round(time.Microsecond), r.P99.Round(time.Microsecond), r.Max.Round(time.Microsecond))
}

// RunLoad drives one open-loop load run and blocks until every arrival
// has completed.
func RunLoad(s *Service, cfg LoadConfig) (*LoadReport, error) {
	if cfg.Tenants <= 0 {
		cfg.Tenants = 4
	}
	if cfg.SkewAlpha != 0 && cfg.SkewAlpha <= 1 {
		return nil, fmt.Errorf("service: SkewAlpha must be > 1 (Zipf exponent), got %g", cfg.SkewAlpha)
	}
	if cfg.Rate <= 0 {
		cfg.Rate = 200
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 200
	}
	if cfg.Stream.Nodes == 0 {
		cfg.Stream = traffic.Config{Nodes: 80, Edges: 80, Seed: 42}
	}
	st, err := traffic.NewStream(cfg.Stream)
	if err != nil {
		return nil, err
	}
	// Pre-draw every arrival's parameters from the single-goroutine stream
	// and RNG so the concurrent firing loop shares nothing mutable.
	rng := rand.New(rand.NewSource(cfg.Seed))
	var zipf *rand.Zipf
	if cfg.SkewAlpha > 1 {
		zipf = rand.NewZipf(rng, cfg.SkewAlpha, 1, uint64(cfg.Tenants-1))
	}
	type arrival struct {
		tenant string
		req    Request
	}
	arrivals := make([]arrival, cfg.Requests)
	perTenant := map[string]int{}
	edges := st.Next(cfg.Requests)
	for i := range arrivals {
		var ti int
		if zipf != nil {
			ti = int(zipf.Uint64())
		} else {
			ti = rng.Intn(cfg.Tenants)
		}
		tenant := fmt.Sprintf("tenant-%02d", ti)
		perTenant[tenant]++
		req := Request{Tenant: tenant, Backend: cfg.Backend, Timeout: cfg.Timeout}
		if len(cfg.QueryIDs) > 0 {
			req.QueryID = cfg.QueryIDs[i%len(cfg.QueryIDs)]
		} else {
			// Parameterize from the edge stream (wrapping when the stream
			// is shorter than the run).
			e := edges[i%len(edges)]
			req.Query = fmt.Sprintf(
				`return fed.scan("frame", "edges").filter("src", "==", %q).count()`, e.U)
		}
		arrivals[i] = arrival{tenant: tenant, req: req}
	}

	interval := time.Duration(float64(time.Second) / cfg.Rate)
	// Latency quantiles come from the shared obs histogram (lock-free
	// observes from every firing goroutine; max is exact, p50/p99 are
	// bucketed within ~1.6%) instead of a sorted sample array.
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		hist = obs.NewHistogram()
		rep  = &LoadReport{Sent: cfg.Requests, PerTenant: perTenant}
	)
	start := time.Now()
	for i := range arrivals {
		// Open loop: fire at the scheduled instant even if earlier
		// requests are still in flight.
		if d := time.Until(start.Add(time.Duration(i) * interval)); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(a arrival) {
			defer wg.Done()
			t0 := time.Now()
			_, err := s.Do(context.Background(), &a.req)
			lat := time.Since(t0)
			if err == nil {
				hist.ObserveDuration(lat)
			}
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				rep.OK++
			case isShed(err):
				rep.Shed++
			case errors.Is(err, context.DeadlineExceeded):
				rep.Timeouts++
			default:
				rep.Failed++
			}
		}(arrivals[i])
	}
	wg.Wait()
	snap := hist.Snapshot()
	rep.P50 = time.Duration(snap.Quantile(0.50))
	rep.P99 = time.Duration(snap.Quantile(0.99))
	rep.Max = time.Duration(snap.Max())
	return rep, nil
}

func isShed(err error) bool {
	var shed *ShedError
	return errors.As(err, &shed)
}

package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/diagnosis"
	"repro/internal/federate"
	"repro/internal/nemoeval"
	"repro/internal/nql/analysis"
	"repro/internal/obs"
	"repro/internal/queries"
	"repro/internal/sandbox"
	"repro/internal/traffic"
)

// queryRequest is the POST /v1/query body.
type queryRequest struct {
	Tenant    string `json:"tenant"`
	Query     string `json:"query,omitempty"`
	QueryID   string `json:"query_id,omitempty"`
	Backend   string `json:"backend,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
	Profile   bool   `json:"profile,omitempty"`
}

// queryResponse is the POST /v1/query success body.
type queryResponse struct {
	Result     string        `json:"result"`
	Stdout     string        `json:"stdout,omitempty"`
	Backend    string        `json:"backend"`
	Dataset    string        `json:"dataset"`
	Degraded   bool          `json:"degraded,omitempty"`
	DurationMS int64         `json:"duration_ms"`
	Profile    *QueryProfile `json:"profile,omitempty"`
}

// errorResponse is every non-2xx body. Diagnostics is populated only for
// static-analysis rejections (400): one entry per error-severity finding,
// so clients can fix programs without parsing the flat message.
type errorResponse struct {
	Error       string                `json:"error"`
	Class       string                `json:"class,omitempty"`
	Diagnostics []analysis.Diagnostic `json:"diagnostics,omitempty"`
}

// swapRequest is the POST /admin/swap body: a named dataset to load and
// flip to. App selects the builder ("traffic", "malt", "diagnosis");
// traffic accepts an explicit scale.
type swapRequest struct {
	Name  string `json:"name"`
	App   string `json:"app"`
	Nodes int    `json:"nodes,omitempty"`
	Edges int    `json:"edges,omitempty"`
	Seed  int64  `json:"seed,omitempty"`
}

// maxBodyBytes bounds request bodies so a misbehaving client cannot make
// the decoder buffer unbounded input.
const maxBodyBytes = 1 << 20

// NewHandler exposes the service over HTTP:
//
//	POST /v1/query     — execute a query (shed → 429 + Retry-After,
//	                     timeout → 504, open breaker → 503, bad query → 422)
//	POST /admin/swap   — load a dataset and atomically flip to it
//	GET  /healthz      — liveness, current dataset, breaker states;
//	                     ?verbose=1 adds SLO states, cache and flight summary
//	GET  /statsz       — counter snapshot
//	GET  /metricsz     — Prometheus text exposition of the obs registry
//	                     (histogram buckets carry trace-ID exemplars)
//	GET  /sloz         — SLO burn rates and alert states (Prometheus text)
//	GET  /tracez       — recent sampled traces; ?tenant=, ?backend=,
//	                     ?min_ns= filter, ?format=text renders span trees
//	GET  /flightz      — flight recorder (notable requests); ?tenant=,
//	                     ?backend=, ?class=, ?min_ns= filter, ?format=json
//	GET  /debugz/bundle — full diagnostic bundle (one JSON blob)
func NewHandler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/query", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, "", fmt.Errorf("use POST"))
			return
		}
		var qr queryRequest
		if err := decodeBody(w, r, &qr); err != nil {
			writeError(w, http.StatusBadRequest, "", err)
			return
		}
		req := &Request{
			Tenant:  qr.Tenant,
			Query:   qr.Query,
			QueryID: qr.QueryID,
			Backend: qr.Backend,
			Timeout: time.Duration(qr.TimeoutMS) * time.Millisecond,
			Profile: qr.Profile,
		}
		// The client closing its connection cancels r.Context(), which
		// cancels the query at its next checkpoint.
		resp, err := s.Do(r.Context(), req)
		if err != nil {
			writeDoError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, queryResponse{
			Result:     resp.Result,
			Stdout:     resp.Stdout,
			Backend:    resp.Backend,
			Dataset:    resp.Dataset,
			Degraded:   resp.Degraded,
			DurationMS: resp.Duration.Milliseconds(),
			Profile:    resp.Profile,
		})
	})
	mux.HandleFunc("/admin/swap", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, "", fmt.Errorf("use POST"))
			return
		}
		var sr swapRequest
		if err := decodeBody(w, r, &sr); err != nil {
			writeError(w, http.StatusBadRequest, "", err)
			return
		}
		builder, name, err := buildDataset(sr)
		if err != nil {
			writeError(w, http.StatusBadRequest, "", err)
			return
		}
		if err := s.Swap(name, builder); err != nil {
			code := http.StatusInternalServerError
			if errors.Is(err, ErrDraining) {
				code = http.StatusServiceUnavailable
			}
			writeError(w, code, "", err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"dataset": name})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		st := s.Stats()
		status := "ok"
		if s.draining.Load() {
			status = "draining"
		}
		body := map[string]any{
			"status":   status,
			"dataset":  st.Dataset,
			"inflight": st.Inflight,
			"breakers": st.Breakers,
		}
		// verbose=1 folds in the health layer: SLO evaluation (burn rates
		// and alert states), cache effectiveness, and how much evidence the
		// flight recorder holds. The terse default stays unchanged — probes
		// keep their tiny payload.
		if r.URL.Query().Get("verbose") == "1" {
			if h := s.Health(); h != nil {
				states := h.Evaluate()
				firing := 0
				for _, hs := range states {
					if hs.PageFiring || hs.TicketFiring {
						firing++
					}
				}
				body["slo"] = states
				body["slo_alerts_firing"] = firing
			}
			if f := s.Flight(); f != nil {
				body["flight_records"] = f.Len()
			}
			caches := map[string]CacheStat{}
			ph, pm, pe := federate.DefaultCache.Stats()
			caches["plan"] = CacheStat{Hits: ph, Misses: pm, Entries: pe}
			bh, bm, be := sandbox.CacheStats()
			caches["program"] = CacheStat{Hits: bh, Misses: bm, Entries: be}
			vh, vm, ve := s.VetCacheStats()
			caches["vet"] = CacheStat{Hits: vh, Misses: vm, Entries: ve}
			body["caches"] = caches
			body["tenants"] = s.TenantNames()
		}
		writeJSON(w, http.StatusOK, body)
	})
	mux.HandleFunc("/statsz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	// The caches (federated plan, sandbox program, vet verdict) keep their
	// own cumulative tallies; sync them into the registry at scrape time
	// (gauge for the entry count, delta adds for the monotonic hit/miss
	// counters). The mutex keeps two concurrent scrapes from
	// double-applying a delta.
	var cacheSyncMu sync.Mutex
	syncCache := func(prefix string, hits, misses uint64, entries int) {
		reg := s.Metrics()
		reg.Gauge(prefix + "_entries").Set(int64(entries))
		hc := reg.Counter(prefix + "_hits_total")
		hc.Add(int64(hits) - hc.Load())
		mc := reg.Counter(prefix + "_misses_total")
		mc.Add(int64(misses) - mc.Load())
	}
	mux.HandleFunc("/metricsz", func(w http.ResponseWriter, r *http.Request) {
		cacheSyncMu.Lock()
		ph, pm, pe := federate.DefaultCache.Stats()
		syncCache("netqueryd_plan_cache", ph, pm, pe)
		bh, bm, be := sandbox.CacheStats()
		syncCache("netqueryd_program_cache", bh, bm, be)
		vh, vm, ve := s.VetCacheStats()
		syncCache("netqueryd_vet_cache", vh, vm, ve)
		cacheSyncMu.Unlock()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.Metrics().WritePrometheus(w)
	})
	mux.HandleFunc("/sloz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		h := s.Health()
		if h == nil {
			fmt.Fprintf(w, "# slo engine disabled\n")
			return
		}
		h.WritePrometheus(w)
	})
	mux.HandleFunc("/tracez", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		tenantF, backendF := q.Get("tenant"), q.Get("backend")
		minNS, _ := strconv.ParseInt(q.Get("min_ns"), 10, 64)
		type traceJSON struct {
			ID    string         `json:"id"`
			Spans []obs.SpanStat `json:"spans"`
		}
		out := []traceJSON{}
		for _, tr := range s.RecentTraces() {
			spans := tr.Snapshot()
			if !traceMatches(spans, tenantF, backendF, minNS) {
				continue
			}
			out = append(out, traceJSON{ID: tr.ID, Spans: spans})
		}
		if q.Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			for _, tr := range out {
				writeTraceText(w, tr.ID, tr.Spans)
			}
			return
		}
		// Default (and format=json): the same JSON array as ever — with no
		// query parameters the output is byte-identical to prior releases.
		writeJSON(w, http.StatusOK, out)
	})
	mux.HandleFunc("/flightz", func(w http.ResponseWriter, r *http.Request) {
		f := s.Flight()
		q := r.URL.Query()
		minNS, _ := strconv.ParseInt(q.Get("min_ns"), 10, 64)
		filter := &obs.FlightFilter{
			Tenant:  q.Get("tenant"),
			Backend: q.Get("backend"),
			Class:   q.Get("class"),
			MinNS:   minNS,
		}
		recs := f.Snapshot(filter) // nil-safe: disabled recorder yields none
		if q.Get("format") == "json" {
			if recs == nil {
				recs = []obs.FlightRecord{}
			}
			writeJSON(w, http.StatusOK, recs)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if f == nil {
			fmt.Fprintf(w, "# flight recorder disabled\n")
			return
		}
		obs.WriteFlightText(w, recs)
	})
	mux.HandleFunc("/debugz/bundle", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.DebugBundle())
	})
	return mux
}

// traceMatches reports whether a trace passes the /tracez filters, judged
// on its root spans: tenant and backend match the root's tags, min_ns the
// root's wall time. No filters → every trace passes.
func traceMatches(spans []obs.SpanStat, tenant, backend string, minNS int64) bool {
	if tenant == "" && backend == "" && minNS <= 0 {
		return true
	}
	for _, sp := range spans {
		if sp.Parent != 0 {
			continue
		}
		var spTenant, spBackend string
		for _, tg := range sp.Tags {
			switch tg.Key {
			case "tenant":
				spTenant = tg.Value
			case "backend":
				spBackend = tg.Value
			}
		}
		if tenant != "" && spTenant != tenant {
			continue
		}
		if backend != "" && spBackend != backend {
			continue
		}
		if minNS > 0 && sp.WallNS < minNS {
			continue
		}
		return true
	}
	return false
}

// writeTraceText renders one trace as an indented span tree for
// /tracez?format=text.
func writeTraceText(w io.Writer, id string, spans []obs.SpanStat) {
	depth := map[int64]int{}
	fmt.Fprintf(w, "trace %s\n", id)
	for _, sp := range spans {
		d := 1
		if sp.Parent != 0 {
			d = depth[sp.Parent] + 1
		}
		depth[sp.ID] = d
		for i := 0; i < d; i++ {
			fmt.Fprint(w, "  ")
		}
		fmt.Fprintf(w, "%s wall_ns=%d own_ns=%d", sp.Name, sp.WallNS, sp.OwnNS)
		for _, tg := range sp.Tags {
			fmt.Fprintf(w, " %s=%s", tg.Key, tg.Value)
		}
		fmt.Fprintf(w, "\n")
	}
}

// buildDataset resolves a swap request into an instance builder. Datasets
// are generated and frozen here, before the flip, so a bad request can
// never take down the serving epoch.
func buildDataset(sr swapRequest) (nemoeval.InstanceBuilder, string, error) {
	name := sr.Name
	switch sr.App {
	case "", queries.AppTraffic:
		cfg := nemoeval.DefaultTrafficConfig
		if sr.Nodes > 0 {
			cfg.Nodes = sr.Nodes
		}
		if sr.Edges > 0 {
			cfg.Edges = sr.Edges
		}
		if sr.Seed != 0 {
			cfg.Seed = sr.Seed
		}
		if name == "" {
			name = fmt.Sprintf("traffic-n%d-e%d-s%d", cfg.Nodes, cfg.Edges, cfg.Seed)
		}
		return nemoeval.TrafficDataset(cfg), name, nil
	case queries.AppMALT:
		if name == "" {
			name = "malt"
		}
		return nemoeval.MALTDataset(), name, nil
	case queries.AppDiagnosis:
		if name == "" {
			name = "diagnosis"
		}
		return nemoeval.DiagnosisDataset(diagnosis.DefaultConfig), name, nil
	default:
		return nil, "", fmt.Errorf("service: unknown app %q (have traffic, malt, diagnosis)", sr.App)
	}
}

// TrafficBuilder is the convenience the daemon and tests use to stand up
// an initial traffic epoch at a given scale.
func TrafficBuilder(nodes, edges int, seed int64) (nemoeval.InstanceBuilder, string) {
	cfg := traffic.Config{Nodes: nodes, Edges: edges, Seed: seed}
	return nemoeval.TrafficDataset(cfg), fmt.Sprintf("traffic-n%d-e%d-s%d", nodes, edges, seed)
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("service: bad request body: %w", err)
	}
	return nil
}

// writeDoError maps Service.Do error taxonomy onto HTTP statuses.
func writeDoError(w http.ResponseWriter, err error) {
	var shed *ShedError
	if errors.As(err, &shed) {
		secs := int64(shed.RetryAfter / time.Second)
		if shed.RetryAfter%time.Second != 0 {
			secs++ // round up: retrying early just sheds again
		}
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		writeError(w, http.StatusTooManyRequests, "", err)
		return
	}
	var unavail *UnavailableError
	if errors.As(err, &unavail) || errors.Is(err, ErrDraining) {
		writeError(w, http.StatusServiceUnavailable, "", err)
		return
	}
	var vet *VetError
	if errors.As(err, &vet) {
		writeJSON(w, http.StatusBadRequest,
			errorResponse{Error: err.Error(), Class: "static", Diagnostics: vet.Diags})
		return
	}
	var qe *QueryError
	if errors.As(err, &qe) {
		if errors.Is(qe, context.DeadlineExceeded) {
			writeError(w, http.StatusGatewayTimeout, qe.Class, err)
			return
		}
		writeError(w, http.StatusUnprocessableEntity, qe.Class, err)
		return
	}
	writeError(w, http.StatusInternalServerError, "", err)
}

func writeError(w http.ResponseWriter, code int, class string, err error) {
	writeJSON(w, code, errorResponse{Error: err.Error(), Class: class})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

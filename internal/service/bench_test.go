package service

import (
	"testing"
	"time"
)

// BenchmarkServiceQuery drives the open-loop load generator (Zipf tenant
// skew, catalog queries) against a live service and reports tail latency
// and shed/error rates alongside ns/op, so the benchdiff gate catches
// service-path regressions in both throughput and tail behavior.
func BenchmarkServiceQuery(b *testing.B) {
	builder, name := TrafficBuilder(30, 30, 42)
	s, err := New(Config{Dataset: builder, DatasetName: name, TenantRPS: 1e6, TenantBurst: 1e6})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	rep, err := RunLoad(s, LoadConfig{
		Tenants:   4,
		SkewAlpha: 1.5,
		Rate:      2000,
		Requests:  b.N,
		QueryIDs:  []string{"ta-e2", "ta-e3"},
		Timeout:   2 * time.Second,
		Seed:      1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(rep.P50), "p50-ns")
	b.ReportMetric(float64(rep.P99), "p99-ns")
	n := float64(rep.Sent)
	b.ReportMetric(float64(rep.Shed)/n, "shed-rate")
	b.ReportMetric(float64(rep.Timeouts+rep.Failed)/n, "err-rate")
}

package service

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/prompt"
)

// spinQuery burns VM steps until its deadline fires: 100M iterations is far
// beyond what any test deadline admits, and far below the step budget's
// reach within one.
const spinQuery = `let i = 0
while i < 100000000 { i = i + 1 }
return i`

func newTestService(t testing.TB, mut func(*Config)) *Service {
	t.Helper()
	builder, name := TrafficBuilder(30, 30, 42)
	cfg := Config{Dataset: builder, DatasetName: name, TenantRPS: 1e6, TenantBurst: 1e6}
	if mut != nil {
		mut(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func TestCatalogQueryRoutesCheapestSubstrate(t *testing.T) {
	s := newTestService(t, nil)
	resp, err := s.Do(context.Background(), &Request{Tenant: "acme", QueryID: "ta-e2"})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if resp.Backend != prompt.BackendNetworkX {
		t.Fatalf("auto-routed backend = %q, want networkx (cheapest)", resp.Backend)
	}
	if resp.Result != "30" {
		t.Fatalf("result = %q, want 30", resp.Result)
	}
	if resp.Degraded {
		t.Fatalf("healthy route reported degraded")
	}
}

func TestRawQueryDefaultsToFederated(t *testing.T) {
	s := newTestService(t, nil)
	resp, err := s.Do(context.Background(), &Request{
		Tenant: "acme",
		Query:  `return fed.scan("sql", "nodes").count()`,
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if resp.Backend != prompt.BackendFederated {
		t.Fatalf("backend = %q, want federated", resp.Backend)
	}
	if resp.Result != "30" {
		t.Fatalf("result = %q, want 30", resp.Result)
	}
}

func TestRequestValidation(t *testing.T) {
	s := newTestService(t, nil)
	cases := []Request{
		{QueryID: "ta-e2"}, // no tenant
		{Tenant: "a"},      // neither query nor id
		{Tenant: "a", Query: "return 1", QueryID: "ta-e2"}, // both
		{Tenant: "a", QueryID: "no-such-query"},
		{Tenant: "a", QueryID: "ta-e2", Backend: "quantum"},
	}
	for i, req := range cases {
		if _, err := s.Do(context.Background(), &req); err == nil {
			t.Errorf("case %d: Do accepted invalid request %+v", i, req)
		}
	}
}

func TestAdmissionShedsOverRateWithRetryAfter(t *testing.T) {
	s := newTestService(t, func(c *Config) {
		c.TenantRPS = 1
		c.TenantBurst = 1
	})
	if _, err := s.Do(context.Background(), &Request{Tenant: "burst", QueryID: "ta-e2"}); err != nil {
		t.Fatalf("first request within burst: %v", err)
	}
	_, err := s.Do(context.Background(), &Request{Tenant: "burst", QueryID: "ta-e2"})
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("over-budget request error = %v, want ShedError", err)
	}
	if shed.RetryAfter <= 0 {
		t.Fatalf("shed RetryAfter = %v, want > 0", shed.RetryAfter)
	}
	// Shedding must not debit the bucket or punish other tenants.
	if _, err := s.Do(context.Background(), &Request{Tenant: "other", QueryID: "ta-e2"}); err != nil {
		t.Fatalf("other tenant was punished for burst tenant's overload: %v", err)
	}
	if got := s.Stats().Shed; got != 1 {
		t.Fatalf("stats.Shed = %d, want 1", got)
	}
}

func TestAdmissionShedsOverConcurrency(t *testing.T) {
	s := newTestService(t, func(c *Config) { c.TenantConcurrency = 1 })
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	started := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		close(started)
		_, err := s.Do(ctx, &Request{Tenant: "holder", Query: spinQuery, Timeout: 5 * time.Second})
		done <- err
	}()
	<-started
	// Wait until the slow query actually occupies the slot.
	deadline := time.Now().Add(2 * time.Second)
	for s.tenantState("holder").gauge.Inflight() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow query never acquired its concurrency slot")
		}
		time.Sleep(time.Millisecond)
	}
	_, err := s.Do(context.Background(), &Request{Tenant: "holder", QueryID: "ta-e2"})
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("over-concurrency request error = %v, want ShedError", err)
	}
	if shed.Reason != "concurrency" {
		t.Fatalf("shed reason = %q, want concurrency", shed.Reason)
	}
	cancel()
	if err := <-done; err == nil {
		t.Fatal("cancelled holder query reported success")
	}
}

func TestDeadlineExceededReturnsPromptly(t *testing.T) {
	s := newTestService(t, nil)
	start := time.Now()
	_, err := s.Do(context.Background(), &Request{Tenant: "slow", Query: spinQuery, Timeout: 30 * time.Millisecond})
	elapsed := time.Since(start)
	var qe *QueryError
	if !errors.As(err, &qe) {
		t.Fatalf("error = %v, want QueryError", err)
	}
	if qe.Class != "cancelled" {
		t.Fatalf("error class = %q, want cancelled", qe.Class)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error does not wrap context.DeadlineExceeded: %v", err)
	}
	// One dispatch quantum is 4096 VM steps — microseconds. A whole second
	// of grace absorbs CI scheduling noise while still catching a query
	// that ran to completion (the spin loop takes far longer than that).
	if elapsed > time.Second {
		t.Fatalf("deadline-exceeded query took %v to return", elapsed)
	}
	if got := s.Stats().Timeouts; got != 1 {
		t.Fatalf("stats.Timeouts = %d, want 1", got)
	}
}

func TestBreakerTripsDegradesAndRecovers(t *testing.T) {
	s := newTestService(t, func(c *Config) {
		c.BreakerThreshold = 3
		c.BreakerCooldown = 150 * time.Millisecond
	})
	// Trip the SQL substrate: an already-expired deadline times out at the
	// VM's first checkpoint, whatever the query.
	for i := 0; i < 3; i++ {
		_, err := s.Do(context.Background(), &Request{
			Tenant: "trip", QueryID: "ta-e2", Backend: prompt.BackendSQL, Timeout: time.Nanosecond,
		})
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("request %d: error = %v, want deadline exceeded", i, err)
		}
	}
	if st := s.breakers[prompt.BackendSQL].State(); st != BreakerOpen {
		t.Fatalf("sql breaker state = %q after %d timeouts, want open", st, 3)
	}

	// A catalog query pinned to the open substrate degrades to the
	// cheapest healthy one.
	resp, err := s.Do(context.Background(), &Request{Tenant: "t", QueryID: "ta-e2", Backend: prompt.BackendSQL})
	if err != nil {
		t.Fatalf("degraded request failed: %v", err)
	}
	if !resp.Degraded || resp.Backend != prompt.BackendNetworkX {
		t.Fatalf("degraded = %v backend = %q, want degraded onto networkx", resp.Degraded, resp.Backend)
	}
	if resp.Result != "30" {
		t.Fatalf("degraded result = %q, want 30", resp.Result)
	}

	// A raw program pinned to the open substrate cannot be translated.
	_, err = s.Do(context.Background(), &Request{
		Tenant: "t", Query: `return db.query("SELECT COUNT(*) AS n FROM nodes").cell(0, "n")`,
		Backend: prompt.BackendSQL,
	})
	var unavail *UnavailableError
	if !errors.As(err, &unavail) {
		t.Fatalf("raw query on open substrate: error = %v, want UnavailableError", err)
	}

	// After the cooldown the breaker goes half-open; one success closes it.
	time.Sleep(200 * time.Millisecond)
	if st := s.breakers[prompt.BackendSQL].State(); st != BreakerHalfOpen {
		t.Fatalf("sql breaker state = %q after cooldown, want half-open", st)
	}
	resp, err = s.Do(context.Background(), &Request{Tenant: "t", QueryID: "ta-e2", Backend: prompt.BackendSQL})
	if err != nil {
		t.Fatalf("half-open probe failed: %v", err)
	}
	if resp.Backend != prompt.BackendSQL || resp.Degraded {
		t.Fatalf("probe ran on %q (degraded %v), want sql", resp.Backend, resp.Degraded)
	}
	if st := s.breakers[prompt.BackendSQL].State(); st != BreakerClosed {
		t.Fatalf("sql breaker state = %q after successful probe, want closed", st)
	}
}

func TestSwapFlipsDatasetAtomically(t *testing.T) {
	s := newTestService(t, nil)
	resp, err := s.Do(context.Background(), &Request{Tenant: "t", QueryID: "ta-e2"})
	if err != nil || resp.Result != "30" {
		t.Fatalf("before swap: result %q err %v, want 30", respResult(resp), err)
	}
	builder, name := TrafficBuilder(50, 50, 7)
	if err := s.Swap(name, builder); err != nil {
		t.Fatalf("Swap: %v", err)
	}
	resp, err = s.Do(context.Background(), &Request{Tenant: "t", QueryID: "ta-e2"})
	if err != nil || resp.Result != "50" {
		t.Fatalf("after swap: result %q err %v, want 50", respResult(resp), err)
	}
	if !strings.Contains(resp.Dataset, "n50") {
		t.Fatalf("response dataset = %q, want the swapped epoch", resp.Dataset)
	}
	if got := s.Stats().Swaps; got != 1 {
		t.Fatalf("stats.Swaps = %d, want 1", got)
	}
}

func TestDrainStopsAdmissionAndWaitsForInflight(t *testing.T) {
	s := newTestService(t, nil)
	release := make(chan struct{})
	inflight := make(chan struct{})
	go func() {
		ep, err := s.acquire()
		if err != nil {
			t.Errorf("acquire: %v", err)
			close(inflight)
			return
		}
		close(inflight)
		<-release
		ep.release()
	}()
	<-inflight

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	// Drain must not complete while a query is in flight.
	select {
	case err := <-drained:
		t.Fatalf("Drain returned (%v) with a query still in flight", err)
	case <-time.After(50 * time.Millisecond):
	}
	// New work is rejected during the drain.
	if _, err := s.Do(context.Background(), &Request{Tenant: "t", QueryID: "ta-e2"}); !errors.Is(err, ErrDraining) {
		t.Fatalf("Do during drain: error = %v, want ErrDraining", err)
	}
	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if _, err := s.Do(context.Background(), &Request{Tenant: "t", QueryID: "ta-e2"}); !errors.Is(err, ErrDraining) {
		t.Fatalf("Do after drain: error = %v, want ErrDraining", err)
	}
}

func respResult(r *Response) string {
	if r == nil {
		return "<nil>"
	}
	return r.Result
}

// TestVetRejectsBeforeAdmission proves the static-analysis gate runs
// ahead of admission control: a provably-broken program is rejected with
// structured diagnostics without spending the tenant's only token, so the
// very next valid request is still admitted.
func TestVetRejectsBeforeAdmission(t *testing.T) {
	s := newTestService(t, func(c *Config) {
		c.TenantRPS = 0.001 // effectively no refill within the test
		c.TenantBurst = 1   // exactly one token for the whole test
	})

	_, err := s.Do(context.Background(), &Request{Tenant: "a", Query: "return 1 / 0"})
	var verr *VetError
	if !errors.As(err, &verr) {
		t.Fatalf("error = %v, want VetError", err)
	}
	if len(verr.Diags) != 1 || verr.Diags[0].Code != "NQ301" {
		t.Fatalf("diagnostics = %+v, want one NQ301", verr.Diags)
	}
	if got := s.vetRejects.Load(); got != 1 {
		t.Fatalf("vet_rejects = %d, want 1", got)
	}
	if got := s.resShed.Load(); got != 0 {
		t.Fatalf("shed = %d after vet reject, want 0", got)
	}

	// The rejected request must not have consumed the single token.
	if _, err := s.Do(context.Background(), &Request{Tenant: "a", Query: "return 1 + 1"}); err != nil {
		t.Fatalf("valid request after vet reject: %v", err)
	}
	// ...and now the budget really is gone.
	var shed *ShedError
	if _, err := s.Do(context.Background(), &Request{Tenant: "a", Query: "return 2"}); !errors.As(err, &shed) {
		t.Fatalf("third request: error = %v, want ShedError", err)
	}
}

// TestVetVerdictCache proves the per-(backend, query) verdict cache: a
// retried query is served from the cache (one entry, not one per retry)
// while the reject counter still advances per request, and the same
// source vetted under two backends yields two independent verdicts.
func TestVetVerdictCache(t *testing.T) {
	s := newTestService(t, nil)
	for i := 0; i < 3; i++ {
		var verr *VetError
		if _, err := s.Do(context.Background(), &Request{Tenant: "a", Query: "return 1 % 0"}); !errors.As(err, &verr) {
			t.Fatalf("retry %d: error = %v, want VetError", i, err)
		}
	}
	if got := s.vetRejects.Load(); got != 3 {
		t.Fatalf("vet_rejects = %d, want 3 (counter is per request, cache or not)", got)
	}
	s.vetMu.Lock()
	n := len(s.vetCache)
	s.vetMu.Unlock()
	if n != 1 {
		t.Fatalf("vetCache entries = %d after 3 retries of one query, want 1", n)
	}

	// Same source, different backends: distinct cache keys, distinct verdicts.
	src := "return db.query(\"SELECT 1\")"
	if _, err := s.Do(context.Background(), &Request{Tenant: "a", Query: src, Backend: "sql"}); err != nil {
		t.Fatalf("sql backend: %v", err)
	}
	var verr *VetError
	if _, err := s.Do(context.Background(), &Request{Tenant: "a", Query: src, Backend: "networkx"}); !errors.As(err, &verr) {
		t.Fatalf("networkx backend: error = %v, want VetError (db undefined there)", err)
	}
}

// TestVetWarningsDoNotReject: advisory findings (here NQ102 unused
// variable) must never change what the service accepts.
func TestVetWarningsDoNotReject(t *testing.T) {
	s := newTestService(t, nil)
	resp, err := s.Do(context.Background(), &Request{
		Tenant: "a",
		Query:  "let unused = 1\nreturn 2",
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if resp.Result != "2" {
		t.Fatalf("result = %q, want 2", resp.Result)
	}
	if got := s.vetRejects.Load(); got != 0 {
		t.Fatalf("vet_rejects = %d, want 0", got)
	}
}

// TestVetChecksBackendSurface: the same program is valid against one
// backend's binding surface and an NQ100 against another.
func TestVetChecksBackendSurface(t *testing.T) {
	s := newTestService(t, nil)
	q := `return db.query("SELECT COUNT(*) AS n FROM nodes").cell(0, "n")`
	if _, err := s.Do(context.Background(), &Request{Tenant: "a", Query: q, Backend: "sql"}); err != nil {
		t.Fatalf("sql backend: %v", err)
	}
	_, err := s.Do(context.Background(), &Request{Tenant: "a", Query: q, Backend: "networkx"})
	var verr *VetError
	if !errors.As(err, &verr) {
		t.Fatalf("networkx backend: error = %v, want VetError (db unbound)", err)
	}
	if verr.Diags[0].Code != "NQ100" {
		t.Fatalf("diagnostic = %+v, want NQ100", verr.Diags[0])
	}
}

// TestVetSyntaxErrorIsNQ001 routes parse failures through the same
// structured-diagnostic channel as semantic findings.
func TestVetSyntaxErrorIsNQ001(t *testing.T) {
	s := newTestService(t, nil)
	_, err := s.Do(context.Background(), &Request{Tenant: "a", Query: "return (1 +"})
	var verr *VetError
	if !errors.As(err, &verr) {
		t.Fatalf("error = %v, want VetError", err)
	}
	if len(verr.Diags) != 1 || verr.Diags[0].Code != "NQ001" {
		t.Fatalf("diagnostics = %+v, want one NQ001", verr.Diags)
	}
	if !strings.Contains(err.Error(), "rejected by static analysis") {
		t.Fatalf("error text = %q", err)
	}
}

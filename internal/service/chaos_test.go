package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"regexp"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/health"
)

// TestChaosSwapUnderLoad drives sustained concurrent load (Zipf-skewed
// across tenants) while the dataset is swapped back and forth underneath
// it. Every response must be dropped-free and consistent: the node count a
// query reports must match the epoch the service says it ran against —
// never a torn mix of old and new state.
func TestChaosSwapUnderLoad(t *testing.T) {
	s := newTestService(t, nil) // 30-node initial epoch
	builder50, name50 := TrafficBuilder(50, 50, 7)
	builder30, name30 := TrafficBuilder(30, 30, 42)

	const (
		workers    = 8
		perWorker  = 40
		swapRounds = 4
	)
	type outcome struct {
		result  string
		dataset string
		err     error
	}
	outcomes := make(chan outcome, workers*perWorker)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Zipf-ish tenant skew: low-numbered workers share the hub
			// tenant, the rest are singletons.
			tenant := fmt.Sprintf("tenant-%02d", w/3)
			for i := 0; i < perWorker; i++ {
				resp, err := s.Do(context.Background(), &Request{Tenant: tenant, QueryID: "ta-e2"})
				o := outcome{err: err}
				if resp != nil {
					o.result = resp.Result
					o.dataset = resp.Dataset
				}
				outcomes <- o
			}
		}(w)
	}
	swapErr := make(chan error, 1)
	go func() {
		for r := 0; r < swapRounds; r++ {
			time.Sleep(10 * time.Millisecond)
			var err error
			if r%2 == 0 {
				err = s.Swap(name50, builder50)
			} else {
				err = s.Swap(name30, builder30)
			}
			if err != nil {
				swapErr <- err
				return
			}
		}
		swapErr <- nil
	}()
	wg.Wait()
	close(outcomes)
	if err := <-swapErr; err != nil {
		t.Fatalf("swap under load: %v", err)
	}

	for o := range outcomes {
		if o.err != nil {
			t.Fatalf("query dropped during swap: %v", o.err)
		}
		want := "30"
		if strings.Contains(o.dataset, "n50") {
			want = "50"
		}
		if o.result != want {
			t.Fatalf("torn answer: epoch %q returned %q, want %q", o.dataset, o.result, want)
		}
	}
	if got := s.Stats().Swaps; got != swapRounds {
		t.Fatalf("stats.Swaps = %d, want %d", got, swapRounds)
	}
}

// TestChaosClientDisconnects cancels in-flight queries mid-run: every one
// must return promptly with the cancel class, no goroutines may leak, and
// client cancellations must not trip any substrate breaker.
func TestChaosClientDisconnects(t *testing.T) {
	s := newTestService(t, nil)
	before := runtime.NumGoroutine()

	const clients = 8
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				time.Sleep(time.Duration(1+i) * 5 * time.Millisecond)
				cancel() // the client hangs up
			}()
			_, errs[i] = s.Do(ctx, &Request{Tenant: "flaky", Query: spinQuery, Timeout: 10 * time.Second})
		}(i)
	}
	wg.Wait()

	for i, err := range errs {
		var qe *QueryError
		if !errors.As(err, &qe) || qe.Class != "cancelled" {
			t.Fatalf("client %d: error = %v, want cancelled QueryError", i, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("client %d: error does not wrap context.Canceled: %v", i, err)
		}
	}
	st := s.Stats()
	for b, state := range st.Breakers {
		if state != BreakerClosed {
			t.Fatalf("breaker %q = %q after client disconnects, want closed (disconnects are not substrate timeouts)", b, state)
		}
	}
	// Disconnects must land in their own counter, never conflated with
	// server-side deadline expiry or generic failures.
	if st.Disconnects != clients {
		t.Fatalf("Disconnects = %d, want %d", st.Disconnects, clients)
	}
	if st.Timeouts != 0 || st.Failures != 0 {
		t.Fatalf("client hangups miscounted: Timeouts=%d Failures=%d, want 0/0", st.Timeouts, st.Failures)
	}
	// Hand-rolled leak check: all request goroutines are synchronous, so
	// the count must return to baseline (with retries for runtime noise).
	deadline := time.Now().Add(3 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestChaosBackendStallCancelled models a stalled backend: a query looping
// over SQL statements against the database substrate. The request deadline
// must cut it off at a cooperative checkpoint, not wait for the loop.
func TestChaosBackendStallCancelled(t *testing.T) {
	s := newTestService(t, nil)
	stall := `let n = 0
while true { n = n + db.query("SELECT COUNT(*) AS n FROM edges").cell(0, "n") }
return n`
	start := time.Now()
	_, err := s.Do(context.Background(), &Request{
		Tenant: "stall", Query: stall, Backend: "sql", Timeout: 50 * time.Millisecond,
	})
	elapsed := time.Since(start)
	var qe *QueryError
	if !errors.As(err, &qe) || qe.Class != "cancelled" {
		t.Fatalf("stalled query error = %v, want cancelled QueryError", err)
	}
	if elapsed > time.Second {
		t.Fatalf("stalled query took %v to cancel", elapsed)
	}
}

// chaosClock is a settable clock for driving SLO windows without waiting
// out real minutes; execution deadlines still run on the real clock.
type chaosClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *chaosClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *chaosClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestChaosBurnRateAlertFullLoop walks the whole observability chain the
// runbook promises: inject substrate faults, watch the availability burn
// rate page on /sloz, find the offenders (with plan fingerprints and trace
// IDs) on /flightz, resolve a /metricsz exemplar in /tracez, capture
// everything in /debugz/bundle, then recover and watch the alert clear.
func TestChaosBurnRateAlertFullLoop(t *testing.T) {
	clk := &chaosClock{t: time.Unix(1_700_000_000, 0)}
	s := newTestService(t, func(c *Config) {
		c.now = clk.Now
		c.TraceSample = 1
		c.FlightSampleEvery = 1   // record every ok request (fake clock: latency reads 0)
		c.BreakerThreshold = 1000 // keep the faulty substrate executing
	})
	h := NewHandler(s)

	availState := func(labels string) *health.State {
		for _, st := range s.Health().Evaluate() {
			if st.Objective.Name == "availability" && st.Labels == labels {
				cp := st
				return &cp
			}
		}
		t.Fatalf("no availability state with labels %s", labels)
		return nil
	}

	// Healthy federated traffic first: its flight records carry plan
	// fingerprints and trace IDs.
	for i := 0; i < 3; i++ {
		if _, err := s.Do(context.Background(), &Request{Tenant: "chaos", Query: fedQuery}); err != nil {
			t.Fatalf("healthy query %d: %v", i, err)
		}
	}
	// Injected fault: programs that blow their (real-clock) deadline on the
	// federated substrate. Every one burns availability error budget.
	for i := 0; i < 20; i++ {
		_, err := s.Do(context.Background(), &Request{Tenant: "chaos", Query: spinQuery, Timeout: 5 * time.Millisecond})
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("fault %d: err = %v, want deadline exceeded", i, err)
		}
	}

	clk.Advance(time.Minute)
	s.HealthTick()

	// 1. The burn-rate page alert fires, per tenant and per backend.
	if st := availState(`{tenant="chaos"}`); !st.PageFiring {
		t.Fatalf("tenant availability page alert did not fire: %+v", st.Windows)
	}
	if st := availState(`{backend="federated"}`); !st.PageFiring {
		t.Fatalf("backend availability page alert did not fire: %+v", st.Windows)
	}
	sloz := get(t, h, "/sloz").Body.String()
	if !strings.Contains(sloz, `netqueryd_slo_alert{slo="availability",tenant="chaos",severity="page"} 1`) {
		t.Fatalf("/sloz does not show the firing page alert:\n%s", sloz)
	}

	// 2. /flightz names the offenders, with provenance.
	var timeouts []obs.FlightRecord
	if err := json.Unmarshal(get(t, h, "/flightz?tenant=chaos&class=timeout&format=json").Body.Bytes(), &timeouts); err != nil {
		t.Fatalf("decode /flightz: %v", err)
	}
	if len(timeouts) != 20 {
		t.Fatalf("flight recorder holds %d timeout offenders, want 20", len(timeouts))
	}
	for _, rec := range timeouts {
		if rec.TraceID == "" || rec.ProgramHash == "" || rec.Result != "timeout" {
			t.Fatalf("offender lacks provenance: %+v", rec)
		}
	}
	var sampled []obs.FlightRecord
	if err := json.Unmarshal(get(t, h, "/flightz?tenant=chaos&class=sampled&format=json").Body.Bytes(), &sampled); err != nil {
		t.Fatalf("decode /flightz: %v", err)
	}
	if len(sampled) == 0 || sampled[0].PlanFP == "" {
		t.Fatalf("healthy federated records lack plan fingerprints: %+v", sampled)
	}

	// 3. A /metricsz exemplar resolves to a retained trace.
	metrics := get(t, h, "/metricsz").Body.String()
	m := regexp.MustCompile(`# \{trace_id="(chaos-\d+)"\}`).FindStringSubmatch(metrics)
	if m == nil {
		t.Fatalf("no trace-ID exemplar on /metricsz")
	}
	if !strings.Contains(get(t, h, "/tracez").Body.String(), `"id":"`+m[1]+`"`) {
		t.Fatalf("exemplar trace %q not in /tracez", m[1])
	}

	// 4. The diagnostic bundle captures the incident.
	b := s.DebugBundle()
	var bundledFiring bool
	for _, st := range b.SLO {
		if st.Objective.Name == "availability" && st.Labels == `{tenant="chaos"}` && st.PageFiring {
			bundledFiring = true
		}
	}
	if !bundledFiring {
		t.Fatalf("bundle does not capture the firing alert")
	}
	if len(b.Flight) == 0 || len(b.Traces) == 0 {
		t.Fatalf("bundle missing evidence: %d flight records, %d traces", len(b.Flight), len(b.Traces))
	}

	// 5. Recovery: healthy traffic resumes, the windows roll past the bad
	// era, and the alert clears (the hysteresis band releases at burn 0).
	for i := 0; i < 5; i++ {
		if _, err := s.Do(context.Background(), &Request{Tenant: "chaos", Query: fedQuery}); err != nil {
			t.Fatalf("recovery query %d: %v", i, err)
		}
	}
	for m := 0; m < 7; m++ {
		clk.Advance(time.Minute)
		s.HealthTick()
	}
	// Seven clean minutes roll the 5m page window past the bad era; the
	// ticket pair's 30m short window rightly holds its alert longer.
	if st := availState(`{tenant="chaos"}`); st.PageFiring || !st.TicketFiring {
		t.Fatalf("after 7 clean minutes want page clear + ticket firing, got page=%v ticket=%v: %+v",
			st.PageFiring, st.TicketFiring, st.Windows)
	}
	for m := 0; m < 31; m++ {
		clk.Advance(time.Minute)
		s.HealthTick()
	}
	if st := availState(`{tenant="chaos"}`); st.PageFiring || st.TicketFiring {
		t.Fatalf("availability alert failed to clear after recovery: %+v", st.Windows)
	}
	if out := get(t, h, "/sloz").Body.String(); !strings.Contains(out, `netqueryd_slo_alert{slo="availability",tenant="chaos",severity="page"} 0`) {
		t.Fatalf("/sloz still shows the page alert firing after recovery:\n%s", out)
	}
}

// histP99 computes a p99 over raw samples through the shared obs
// histogram, the same estimator the service and load generator report.
func histP99(lats []time.Duration) time.Duration {
	h := obs.NewHistogram()
	for _, d := range lats {
		h.ObserveDuration(d)
	}
	return time.Duration(h.Snapshot().Quantile(0.99))
}

// TestChaosOverBudgetTenantIsolation floods one tenant far past its
// admitted rate while a well-behaved tenant keeps issuing queries: the
// flooding tenant is shed with Retry-After, and the victim's p99 stays
// within 2x of its unloaded p99 (with an absolute floor absorbing
// scheduler noise on microsecond baselines).
func TestChaosOverBudgetTenantIsolation(t *testing.T) {
	s := newTestService(t, func(c *Config) {
		c.TenantRPS = 20
		c.TenantBurst = 5
	})
	const probes = 40
	victim := func() []time.Duration {
		lat := make([]time.Duration, 0, probes)
		for i := 0; i < probes; i++ {
			t0 := time.Now()
			if _, err := s.Do(context.Background(), &Request{Tenant: "victim", QueryID: "ta-e2"}); err == nil {
				lat = append(lat, time.Since(t0))
			}
			time.Sleep(55 * time.Millisecond) // ~18 rps, inside budget
		}
		return lat
	}

	unloaded := victim()
	if len(unloaded) < probes/2 {
		t.Fatalf("unloaded victim only completed %d/%d probes", len(unloaded), probes)
	}
	unloadedP99 := histP99(unloaded)

	// Flood: a tenant offering far more than its budget.
	stop := make(chan struct{})
	var floodSheds atomic.Int64
	var fwg sync.WaitGroup
	for w := 0; w < 4; w++ {
		fwg.Add(1)
		go func() {
			defer fwg.Done()
			// Open-loop flood: ~2000 offered req/s across the workers,
			// 100x the tenant's 20 rps budget.
			tick := time.NewTicker(2 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
				}
				_, err := s.Do(context.Background(), &Request{Tenant: "flood", QueryID: "ta-e2"})
				if isShed(err) {
					floodSheds.Add(1)
				}
			}
		}()
	}
	loaded := victim()
	close(stop)
	fwg.Wait()

	if floodSheds.Load() == 0 {
		t.Fatal("over-budget tenant was never shed")
	}
	if len(loaded) < probes/2 {
		t.Fatalf("loaded victim only completed %d/%d probes (flood starved admission)", len(loaded), probes)
	}
	loadedP99 := histP99(loaded)
	bound := 2 * unloadedP99
	if floor := 20 * time.Millisecond; bound < floor {
		bound = floor
	}
	if loadedP99 > bound {
		t.Fatalf("victim p99 under flood = %v, want <= %v (unloaded p99 %v)", loadedP99, bound, unloadedP99)
	}
}

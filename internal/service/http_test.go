package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func postJSON(t *testing.T, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(b))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestHTTPQueryEndToEnd(t *testing.T) {
	s := newTestService(t, nil)
	h := NewHandler(s)

	w := postJSON(t, h, "/v1/query", queryRequest{Tenant: "acme", QueryID: "ta-e2"})
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d body %s, want 200", w.Code, w.Body)
	}
	var resp queryResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if resp.Result != "30" || resp.Backend != "networkx" {
		t.Fatalf("response = %+v, want result 30 on networkx", resp)
	}
}

func TestHTTPBadRequests(t *testing.T) {
	s := newTestService(t, nil)
	h := NewHandler(s)

	// Unknown fields are rejected so client typos don't silently no-op.
	req := httptest.NewRequest(http.MethodPost, "/v1/query",
		bytes.NewReader([]byte(`{"tenant":"a","query_idd":"ta-e2"}`)))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("unknown field: status = %d, want 400", w.Code)
	}
	// Statically-invalid NQL is rejected by the vet pass with structured
	// diagnostics before it ever reaches a backend.
	w = postJSON(t, h, "/v1/query", queryRequest{Tenant: "a", Query: "return nonsense_var"})
	if w.Code != http.StatusBadRequest {
		t.Fatalf("bad query: status = %d body %s, want 400", w.Code, w.Body)
	}
	var er errorResponse
	_ = json.Unmarshal(w.Body.Bytes(), &er)
	if er.Class != "static" {
		t.Fatalf("bad query class = %q, want static", er.Class)
	}
	if len(er.Diagnostics) != 1 || er.Diagnostics[0].Code != "NQ100" {
		t.Fatalf("bad query diagnostics = %+v, want one NQ100", er.Diagnostics)
	}
	if w := postJSON(t, h, "/v1/query", queryRequest{Tenant: "a"}); w.Code != http.StatusUnprocessableEntity {
		t.Fatalf("empty query: status = %d, want 422", w.Code)
	}
}

func TestHTTPShedMapsTo429WithRetryAfter(t *testing.T) {
	s := newTestService(t, func(c *Config) {
		c.TenantRPS = 1
		c.TenantBurst = 1
	})
	h := NewHandler(s)
	if w := postJSON(t, h, "/v1/query", queryRequest{Tenant: "b", QueryID: "ta-e2"}); w.Code != http.StatusOK {
		t.Fatalf("first request: status = %d, want 200", w.Code)
	}
	w := postJSON(t, h, "/v1/query", queryRequest{Tenant: "b", QueryID: "ta-e2"})
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("over budget: status = %d, want 429", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("429 response missing Retry-After header")
	}
}

func TestHTTPTimeoutMapsTo504(t *testing.T) {
	s := newTestService(t, nil)
	h := NewHandler(s)
	w := postJSON(t, h, "/v1/query", queryRequest{Tenant: "slow", Query: spinQuery, TimeoutMS: 30})
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("timeout: status = %d body %s, want 504", w.Code, w.Body)
	}
	var er errorResponse
	_ = json.Unmarshal(w.Body.Bytes(), &er)
	if er.Class != "cancelled" {
		t.Fatalf("timeout class = %q, want cancelled", er.Class)
	}
}

func TestHTTPSwapAndHealth(t *testing.T) {
	s := newTestService(t, nil)
	h := NewHandler(s)

	w := postJSON(t, h, "/admin/swap", swapRequest{App: "traffic", Nodes: 50, Edges: 50, Seed: 7})
	if w.Code != http.StatusOK {
		t.Fatalf("swap: status = %d body %s, want 200", w.Code, w.Body)
	}
	w = postJSON(t, h, "/v1/query", queryRequest{Tenant: "acme", QueryID: "ta-e2"})
	var resp queryResponse
	_ = json.Unmarshal(w.Body.Bytes(), &resp)
	if resp.Result != "50" {
		t.Fatalf("post-swap result = %q, want 50", resp.Result)
	}

	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	hw := httptest.NewRecorder()
	h.ServeHTTP(hw, req)
	if hw.Code != http.StatusOK {
		t.Fatalf("healthz: status = %d, want 200", hw.Code)
	}
	var health struct {
		Status   string            `json:"status"`
		Dataset  string            `json:"dataset"`
		Breakers map[string]string `json:"breakers"`
	}
	if err := json.Unmarshal(hw.Body.Bytes(), &health); err != nil {
		t.Fatalf("healthz decode: %v", err)
	}
	if health.Status != "ok" || health.Dataset != "traffic-n50-e50-s7" {
		t.Fatalf("healthz = %+v, want ok on swapped dataset", health)
	}
	if len(health.Breakers) != len(Substrates()) {
		t.Fatalf("healthz reports %d breakers, want %d", len(health.Breakers), len(Substrates()))
	}

	if w := postJSON(t, h, "/admin/swap", swapRequest{App: "warp-drive"}); w.Code != http.StatusBadRequest {
		t.Fatalf("bad swap app: status = %d, want 400", w.Code)
	}
}

func TestHTTPVetRejectCounterOnMetricsz(t *testing.T) {
	s := newTestService(t, nil)
	h := NewHandler(s)
	w := postJSON(t, h, "/v1/query", queryRequest{Tenant: "a", Query: "return 1 % 0"})
	if w.Code != http.StatusBadRequest {
		t.Fatalf("vet reject: status = %d body %s, want 400", w.Code, w.Body)
	}
	req := httptest.NewRequest(http.MethodGet, "/metricsz", nil)
	mw := httptest.NewRecorder()
	h.ServeHTTP(mw, req)
	if !bytes.Contains(mw.Body.Bytes(), []byte("netqueryd_vet_rejects_total 1")) {
		t.Fatalf("/metricsz missing netqueryd_vet_rejects_total 1:\n%s", mw.Body)
	}
}

func TestHTTPClientDisconnectCancelsQuery(t *testing.T) {
	s := newTestService(t, nil)
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	body := []byte(`{"tenant":"hangup","query":"let i = 0\nwhile i < 100000000 { i = i + 1 }\nreturn i","timeout_ms":10000}`)
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Timeout: 50 * time.Millisecond}
	if _, err := client.Do(req); err == nil {
		t.Fatal("expected the client timeout to abort the request")
	}
	// The server-side query must be cancelled promptly: once it finishes,
	// the disconnect is counted and the tenant's slot frees up.
	deadline := time.Now().Add(2 * time.Second)
	for s.Stats().Disconnects == 0 {
		if time.Now().After(deadline) {
			t.Fatal("server-side query was not cancelled after client disconnect")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

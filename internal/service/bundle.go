package service

import (
	"runtime"
	"sort"

	"repro/internal/federate"
	"repro/internal/limiter"
	"repro/internal/obs"
	"repro/internal/obs/health"
	"repro/internal/sandbox"
)

// This file is the diagnostic bundle: one JSON blob capturing everything an
// operator needs to debug an incident after the fact — counters, SLO
// states, flight records, traces, cache statistics, limiter and breaker
// states, and a runtime summary. /debugz/bundle serves it; netqueryd
// -dump-bundle writes it to stdout and exits. Every slice and map in the
// bundle is ordered deterministically so two bundles diff cleanly.

// CacheStat is one cache's cumulative hit/miss tallies plus its current
// entry count.
type CacheStat struct {
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Entries int    `json:"entries"`
}

// TenantState is one tenant's admission and latency state in a bundle.
type TenantState struct {
	Tenant    string              `json:"tenant"`
	Requests  int64               `json:"requests"`
	Shed      int64               `json:"shed"`
	Errors    int64               `json:"errors"`
	Bucket    limiter.BucketState `json:"bucket"`
	Gauge     limiter.GaugeState  `json:"gauge"`
	P50NS     int64               `json:"p50_ns"`
	P99NS     int64               `json:"p99_ns"`
	SlowNS    int64               `json:"slow_ns"`
	Completed int64               `json:"completed"`
}

// BreakerState is one substrate breaker's state in a bundle.
type BreakerState struct {
	Backend string `json:"backend"`
	State   string `json:"state"`
	Trips   int64  `json:"trips"`
}

// RuntimeState summarizes the Go runtime at capture time.
type RuntimeState struct {
	Goroutines  int    `json:"goroutines"`
	HeapAlloc   uint64 `json:"heap_alloc"`
	HeapObjects uint64 `json:"heap_objects"`
	TotalAlloc  uint64 `json:"total_alloc"`
	NumGC       uint32 `json:"num_gc"`
}

// BundleTrace is one retained trace rendered for a bundle (the same shape
// /tracez serves).
type BundleTrace struct {
	ID    string         `json:"id"`
	Spans []obs.SpanStat `json:"spans"`
}

// Bundle is the complete diagnostic snapshot.
type Bundle struct {
	CapturedUnixNS int64                `json:"captured_unix_ns"`
	Stats          Stats                `json:"stats"`
	Breakers       []BreakerState       `json:"breakers"`
	SLO            []health.State       `json:"slo,omitempty"`
	Flight         []obs.FlightRecord   `json:"flight,omitempty"`
	Traces         []BundleTrace        `json:"traces,omitempty"`
	Tenants        []TenantState        `json:"tenants"`
	Caches         map[string]CacheStat `json:"caches"`
	Runtime        RuntimeState         `json:"runtime"`
	Extra          map[string]any       `json:"extra,omitempty"`
}

// RegisterBundleSection attaches a named host-provided section to every
// future bundle (e.g. a model-gateway state snapshot). The function is
// called at capture time; its result lands under Extra[name]. Re-using a
// name replaces the section.
func (s *Service) RegisterBundleSection(name string, fn func() any) {
	s.bundleMu.Lock()
	defer s.bundleMu.Unlock()
	if s.bundleSections == nil {
		s.bundleSections = map[string]func() any{}
	}
	s.bundleSections[name] = fn
}

// DebugBundle captures the full diagnostic snapshot. It takes each
// component's locks briefly and in turn — never all at once — so capture
// is safe under load; the pieces are individually consistent, like any
// metrics scrape.
func (s *Service) DebugBundle() *Bundle {
	now := s.cfg.now()
	b := &Bundle{
		CapturedUnixNS: now.UnixNano(),
		Stats:          s.Stats(),
		Caches:         map[string]CacheStat{},
	}

	for _, backend := range substrateCost {
		br := s.breakers[backend]
		b.Breakers = append(b.Breakers, BreakerState{
			Backend: backend, State: br.State(), Trips: br.Trips(),
		})
	}

	if s.health != nil {
		b.SLO = s.health.Evaluate()
	}
	if s.flight != nil {
		b.Flight = s.flight.Snapshot(nil)
	}
	for _, tr := range s.RecentTraces() {
		b.Traces = append(b.Traces, BundleTrace{ID: tr.ID, Spans: tr.Snapshot()})
	}

	s.tmu.Lock()
	names := make([]string, 0, len(s.tenants))
	for n := range s.tenants {
		names = append(names, n)
	}
	sort.Strings(names)
	tenants := make([]*tenant, len(names))
	for i, n := range names {
		tenants[i] = s.tenants[n]
	}
	s.tmu.Unlock()
	for i, t := range tenants {
		lat := t.latency.Snapshot()
		b.Tenants = append(b.Tenants, TenantState{
			Tenant:    names[i],
			Requests:  t.reqCtr.Load(),
			Shed:      t.shedCtr.Load(),
			Errors:    t.badCtr.Load(),
			Bucket:    t.requests.Snapshot(now),
			Gauge:     t.gauge.Snapshot(),
			P50NS:     lat.Quantile(0.5),
			P99NS:     lat.Quantile(0.99),
			SlowNS:    t.slowNS.Load(),
			Completed: lat.Count,
		})
	}

	ph, pm, pe := federate.DefaultCache.Stats()
	b.Caches["plan"] = CacheStat{Hits: ph, Misses: pm, Entries: pe}
	bh, bm, be := sandbox.CacheStats()
	b.Caches["program"] = CacheStat{Hits: bh, Misses: bm, Entries: be}
	vh, vm, ve := s.VetCacheStats()
	b.Caches["vet"] = CacheStat{Hits: vh, Misses: vm, Entries: ve}

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	b.Runtime = RuntimeState{
		Goroutines:  runtime.NumGoroutine(),
		HeapAlloc:   ms.HeapAlloc,
		HeapObjects: ms.HeapObjects,
		TotalAlloc:  ms.TotalAlloc,
		NumGC:       ms.NumGC,
	}

	s.bundleMu.Lock()
	sections := make(map[string]func() any, len(s.bundleSections))
	for name, fn := range s.bundleSections {
		sections[name] = fn
	}
	s.bundleMu.Unlock()
	if len(sections) > 0 {
		b.Extra = make(map[string]any, len(sections))
		for name, fn := range sections {
			b.Extra[name] = fn()
		}
	}
	return b
}

package service

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/federate"
	"repro/internal/limiter"
	"repro/internal/nemoeval"
	"repro/internal/nql"
	"repro/internal/nql/analysis"
	"repro/internal/obs"
	"repro/internal/obs/health"
	"repro/internal/prompt"
	"repro/internal/queries"
	"repro/internal/sandbox"
)

// substrateCost orders the execution substrates by how much work a fresh
// request costs: the graph (networkx) substrate clones copy-on-write and
// binds immediately, the relational substrates pay a lazy table build, and
// the federated backend binds everything at once. Degraded catalog queries
// fall to the cheapest healthy substrate in this order.
var substrateCost = []string{
	prompt.BackendNetworkX,
	prompt.BackendPandas,
	prompt.BackendSQL,
	prompt.BackendFederated,
}

// Config tunes a Service. The zero value of every field except Dataset
// selects a sane default.
type Config struct {
	// Dataset builds instances of the initial dataset epoch (required).
	Dataset nemoeval.InstanceBuilder
	// DatasetName labels the initial epoch in responses and /healthz.
	DatasetName string

	// TenantRPS caps each tenant's admitted requests per second (default
	// 50; the bucket sheds, it never queues).
	TenantRPS float64
	// TenantBurst is the request bucket's burst capacity (default 16).
	TenantBurst float64
	// TenantConcurrency caps each tenant's in-flight queries (default 8;
	// negative means unlimited).
	TenantConcurrency int

	// DefaultTimeout applies when a request carries no deadline of its own
	// (default 2s). MaxTimeout caps client-requested timeouts (default 10s).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration

	// BreakerThreshold consecutive timeouts trip a substrate's breaker
	// (default 5); BreakerCooldown is how long it stays open (default 1s).
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// Policy is the sandbox resource budget for query execution; the zero
	// value selects sandbox.DefaultPolicy. The per-request context always
	// overrides Policy.Context.
	Policy sandbox.Policy

	// TraceSample is the fraction of requests traced (0 disables tracing,
	// 1 traces every request; values in between sample deterministically,
	// one trace per round(1/TraceSample) arrivals). Requests that ask for
	// a profile are always traced. Untraced requests pay nothing.
	TraceSample float64

	// Metrics, when non-nil, is the registry the service records into —
	// share one registry across components to serve a single /metricsz.
	// Nil creates a private registry (exposed via Service.Metrics).
	Metrics *obs.Registry

	// SLOAvailability is the availability objective registered for every
	// backend and tenant: the target fraction of executed requests that
	// must not fail server-side (timeouts and execution errors count
	// against it; sheds, client disconnects and vet rejects do not — those
	// are the service working as intended). Default 0.999; negative
	// disables the availability objective.
	SLOAvailability float64
	// SLOLatencyTarget is the latency objective's quantile target: the
	// fraction of requests that must finish under SLOLatencyThreshold
	// (default 0.99).
	SLOLatencyTarget float64
	// SLOLatencyThreshold is the latency objective's per-request budget
	// (default 250ms; negative disables the latency objective).
	SLOLatencyThreshold time.Duration

	// FlightCapacity bounds the flight recorder's ring (default 256;
	// negative disables the recorder entirely).
	FlightCapacity int
	// FlightSampleEvery admits one unremarkable (fast, successful) request
	// per this many into the flight recorder as workload context (default
	// 64; negative records notable requests only).
	FlightSampleEvery int
	// FlightSlowFactor scales each tenant's observed p99 into its dynamic
	// slow-query threshold (default 4; the SLO latency threshold is the
	// floor until a tenant has enough samples).
	FlightSlowFactor float64

	// now is the clock hook, swappable in tests.
	now func() time.Time
}

// Request is one query submission.
type Request struct {
	// Tenant names the submitting tenant (required; admission state is
	// created on first use).
	Tenant string
	// Query is a raw NQL program. Mutually exclusive with QueryID.
	Query string
	// QueryID names a catalog query (see internal/queries); the service
	// runs its golden program for the chosen substrate, which is what
	// makes breaker degradation possible.
	QueryID string
	// Backend pins a substrate ("networkx", "pandas", "sql", "federated");
	// empty means auto (cheapest healthy for catalog queries, federated
	// for raw programs).
	Backend string
	// Timeout bounds execution (0 = DefaultTimeout, capped at MaxTimeout).
	Timeout time.Duration
	// Profile requests an execution profile on the response: per-operator
	// rows and wall/own time for federated plans (plus nested sqldb scan/
	// join frames), an opcode-class and builtin profile from the NQL VM,
	// and the request's trace spans.
	Profile bool
}

// Response is one successful execution.
type Response struct {
	Value    nql.Value     // program return value
	Result   string        // nql.Repr rendering of Value
	Stdout   string        // captured print() output
	Backend  string        // substrate actually used
	Dataset  string        // epoch the query ran against
	Degraded bool          // true when the breaker rerouted the substrate
	Duration time.Duration // execution wall time
	Profile  *QueryProfile // execution profile (only when requested)
}

// QueryProfile is the EXPLAIN ANALYZE-style execution profile attached to
// a response when the request set Profile.
type QueryProfile struct {
	TraceID string `json:"trace_id,omitempty"`
	// Operators is the operator tree in pre-order (depth reconstructs the
	// nesting): federated plan nodes with nested sqldb scan/join frames.
	Operators []obs.OpStat `json:"operators,omitempty"`
	// VM is the NQL VM's opcode-class and builtin time/alloc profile.
	VM *nql.VMProfileReport `json:"vm,omitempty"`
	// Spans are the request's trace spans (query > bind > execute).
	Spans []obs.SpanStat `json:"spans,omitempty"`
}

// ShedError reports a request rejected by admission control; RetryAfter
// hints when the tenant's budget will admit it.
type ShedError struct {
	Reason     string
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("service: over budget (%s), retry after %s", e.Reason, e.RetryAfter)
}

// UnavailableError reports that every admissible substrate's breaker is
// open (or the pinned substrate is open and the request cannot degrade).
type UnavailableError struct{ Backend string }

func (e *UnavailableError) Error() string {
	return fmt.Sprintf("service: substrate %q unavailable (circuit open)", e.Backend)
}

// QueryError wraps an execution failure with its NQL error class;
// class "cancelled" with a deadline cause means the request timed out.
type QueryError struct {
	Class string
	Err   error
}

func (e *QueryError) Error() string { return e.Err.Error() }
func (e *QueryError) Unwrap() error { return e.Err }

// VetError reports a raw program rejected by static analysis: it is
// provably broken (syntax error, undefined names for its backend, or a
// guaranteed runtime failure), so the service refuses it before admission
// control spends any tenant budget on it. Diags carries the
// error-severity findings for the response body.
type VetError struct {
	Diags []analysis.Diagnostic
}

func (e *VetError) Error() string {
	parts := make([]string, len(e.Diags))
	for i, d := range e.Diags {
		parts[i] = d.String()
	}
	return "service: program rejected by static analysis: " + strings.Join(parts, "; ")
}

// ErrDraining is returned once Drain has begun: the service is shutting
// down and admits no new work.
var ErrDraining = errors.New("service: draining, not admitting new queries")

// epoch is one dataset generation. Requests acquire the current epoch,
// clone an instance from its builder, and release it when done; Swap
// closes the old epoch and waits for its inflight count to drain before
// declaring the flip complete.
type epoch struct {
	name    string
	builder nemoeval.InstanceBuilder

	mu       sync.Mutex
	inflight int
	closed   bool
	drained  chan struct{}
}

// tenant is one tenant's admission state plus its cached metric
// instruments (resolved once here so the per-request hot path never takes
// the registry lock).
type tenant struct {
	requests *limiter.Bucket
	gauge    *limiter.Gauge

	reqCtr  *obs.Counter   // netqueryd_tenant_requests_total{tenant=...}
	shedCtr *obs.Counter   // netqueryd_tenant_shed_total{tenant=...}
	badCtr  *obs.Counter   // netqueryd_tenant_errors_total{tenant=...}
	latency *obs.Histogram // netqueryd_tenant_latency_ns{tenant=...}

	// slowNS is the tenant's dynamic slow-query threshold in nanoseconds:
	// seeded from the SLO latency budget, refreshed by HealthTick to
	// p99 × FlightSlowFactor once the tenant has enough samples. Read on
	// every request completion, hence atomic.
	slowNS atomic.Int64
}

// Service is the netqueryd query engine. Safe for concurrent use.
type Service struct {
	cfg Config

	ep       atomic.Pointer[epoch]
	swapMu   sync.Mutex // serializes Swap/Drain
	draining atomic.Bool

	tmu     sync.Mutex
	tenants map[string]*tenant

	breakers map[string]*Breaker

	// Every counter below lives in reg (rendered by /metricsz); the
	// fields cache the instruments so Do never takes the registry lock.
	reg           *obs.Registry
	resOK         *obs.Counter // netqueryd_results_total{result="ok"}
	resShed       *obs.Counter // ...{result="shed"}
	resTimeout    *obs.Counter // ...{result="timeout"}: our deadline fired
	resDisconnect *obs.Counter // ...{result="disconnect"}: client went away
	resError      *obs.Counter // ...{result="error"}: other failures
	vetRejects    *obs.Counter // netqueryd_vet_rejects_total
	degraded      *obs.Counter
	swaps         *obs.Counter
	inflight      *obs.Gauge
	backendCtr    map[string]*obs.Counter
	backendLat    map[string]*obs.Histogram
	backendBad    map[string]*obs.Counter // netqueryd_backend_errors_total{backend=...}

	// health evaluates the declared SLOs over sliding windows sampled by
	// HealthTick; flight is the always-on recorder of notable requests.
	// Either may be nil when disabled by config (both are nil-safe).
	health *health.Engine
	flight *obs.FlightRecorder

	// Trace sampling state: traceEvery = round(1/TraceSample) arrivals per
	// trace (0 = off); traceSeq rotates through it; traceID names traces.
	traceEvery int64
	traceSeq   atomic.Int64
	traceID    atomic.Int64
	traces     traceRing

	// Vet verdicts cached per (backend, query) so a repeated raw query
	// pays one map lookup, not a fresh name-resolution walk. Bounded the
	// same way as the sandbox program cache; a nil value records "clean".
	vetMu     sync.Mutex
	vetCache  map[vetKey]*VetError
	vetHits   atomic.Uint64
	vetMisses atomic.Uint64

	// bundleMu guards extra diagnostic-bundle sections registered by hosts
	// (see RegisterBundleSection in bundle.go).
	bundleMu       sync.Mutex
	bundleSections map[string]func() any
}

// vetKey identifies one vet verdict: name resolution depends on the
// requested backend's binding surface, so the same source can be clean on
// one backend and rejected on another.
type vetKey struct{ backend, query string }

// vetCacheMax bounds the verdict cache; past it, verdicts are recomputed
// rather than retained, so hostile tenants cannot grow the map unboundedly.
const vetCacheMax = 4096

// traceRing keeps the most recent sampled traces for /tracez.
type traceRing struct {
	mu   sync.Mutex
	buf  [32]*obs.Trace
	next int
	n    int
}

func (r *traceRing) add(t *obs.Trace) {
	r.mu.Lock()
	r.buf[r.next] = t
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// recent returns the retained traces, oldest first.
func (r *traceRing) recent() []*obs.Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*obs.Trace, 0, r.n)
	start := r.next - r.n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// New builds a service over cfg, applying defaults.
func New(cfg Config) (*Service, error) {
	if cfg.Dataset == nil {
		return nil, fmt.Errorf("service: Config.Dataset is required")
	}
	if cfg.DatasetName == "" {
		cfg.DatasetName = "default"
	}
	if cfg.TenantRPS <= 0 {
		cfg.TenantRPS = 50
	}
	if cfg.TenantBurst <= 0 {
		cfg.TenantBurst = 16
	}
	if cfg.TenantConcurrency == 0 {
		cfg.TenantConcurrency = 8
	} else if cfg.TenantConcurrency < 0 {
		cfg.TenantConcurrency = 0 // limiter.Gauge: 0 = unlimited
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 2 * time.Second
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 10 * time.Second
	}
	if cfg.Policy == (sandbox.Policy{}) {
		cfg.Policy = sandbox.DefaultPolicy
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	if cfg.TraceSample < 0 || cfg.TraceSample > 1 {
		return nil, fmt.Errorf("service: TraceSample must be in [0, 1], got %g", cfg.TraceSample)
	}
	if cfg.SLOAvailability == 0 {
		cfg.SLOAvailability = 0.999
	}
	if cfg.SLOAvailability >= 1 {
		return nil, fmt.Errorf("service: SLOAvailability must be below 1, got %g", cfg.SLOAvailability)
	}
	if cfg.SLOLatencyTarget == 0 {
		cfg.SLOLatencyTarget = 0.99
	}
	if cfg.SLOLatencyTarget < 0 || cfg.SLOLatencyTarget >= 1 {
		return nil, fmt.Errorf("service: SLOLatencyTarget must be in (0, 1), got %g", cfg.SLOLatencyTarget)
	}
	if cfg.SLOLatencyThreshold == 0 {
		cfg.SLOLatencyThreshold = 250 * time.Millisecond
	}
	if cfg.FlightCapacity == 0 {
		cfg.FlightCapacity = 256
	}
	if cfg.FlightSampleEvery == 0 {
		cfg.FlightSampleEvery = 64
	} else if cfg.FlightSampleEvery < 0 {
		cfg.FlightSampleEvery = 0 // recorder keeps notable requests only
	}
	if cfg.FlightSlowFactor <= 0 {
		cfg.FlightSlowFactor = 4
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	reg := cfg.Metrics
	s := &Service{
		cfg:      cfg,
		tenants:  map[string]*tenant{},
		breakers: map[string]*Breaker{},

		reg:           reg,
		resOK:         reg.Counter("netqueryd_results_total", "result", "ok"),
		resShed:       reg.Counter("netqueryd_results_total", "result", "shed"),
		resTimeout:    reg.Counter("netqueryd_results_total", "result", "timeout"),
		resDisconnect: reg.Counter("netqueryd_results_total", "result", "disconnect"),
		resError:      reg.Counter("netqueryd_results_total", "result", "error"),
		vetRejects:    reg.Counter("netqueryd_vet_rejects_total"),
		degraded:      reg.Counter("netqueryd_degraded_total"),
		swaps:         reg.Counter("netqueryd_swaps_total"),
		inflight:      reg.Gauge("netqueryd_inflight"),
		backendCtr:    map[string]*obs.Counter{},
		backendLat:    map[string]*obs.Histogram{},
		backendBad:    map[string]*obs.Counter{},
		vetCache:      map[vetKey]*VetError{},
	}
	if cfg.TraceSample > 0 {
		s.traceEvery = int64(1/cfg.TraceSample + 0.5)
		if s.traceEvery < 1 {
			s.traceEvery = 1
		}
	}
	if cfg.SLOAvailability > 0 || cfg.SLOLatencyThreshold > 0 {
		s.health = health.NewEngine(health.Options{Now: cfg.now})
	}
	if cfg.FlightCapacity > 0 {
		s.flight = obs.NewFlightRecorder(cfg.FlightCapacity, cfg.FlightSampleEvery)
	}
	for _, b := range substrateCost {
		s.breakers[b] = NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, cfg.now)
		s.backendCtr[b] = reg.Counter("netqueryd_backend_requests_total", "backend", b)
		s.backendLat[b] = reg.Histogram("netqueryd_backend_latency_ns", "backend", b)
		s.backendBad[b] = reg.Counter("netqueryd_backend_errors_total", "backend", b)
		s.registerObjectives(s.backendLat[b], s.backendBad[b], "backend", b)
	}
	first := &epoch{name: cfg.DatasetName, builder: cfg.Dataset, drained: make(chan struct{})}
	s.ep.Store(first)
	return s, nil
}

// registerObjectives declares the configured SLOs for one latency
// histogram + error counter pair (a backend's or a tenant's). Availability
// counts server-side failures against executed requests; latency counts
// requests over the threshold against the target quantile. Both read live
// cumulative tallies — the health engine's tick turns them into sliding
// windows.
func (s *Service) registerObjectives(lat *obs.Histogram, bad *obs.Counter, labels ...string) {
	if s.health == nil {
		return
	}
	if s.cfg.SLOAvailability > 0 {
		_ = s.health.Register(health.Objective{
			Name:   "availability",
			Kind:   health.Availability,
			Target: s.cfg.SLOAvailability,
		}, func() (int64, int64) {
			return lat.Count(), bad.Load()
		}, labels...)
	}
	if thr := int64(s.cfg.SLOLatencyThreshold); thr > 0 {
		_ = s.health.Register(health.Objective{
			Name:        "latency",
			Kind:        health.Latency,
			Target:      s.cfg.SLOLatencyTarget,
			ThresholdNS: thr,
		}, func() (int64, int64) {
			return lat.Count(), lat.CountAbove(thr)
		}, labels...)
	}
}

// tenantState returns (creating on first use) one tenant's admission state.
func (s *Service) tenantState(name string) *tenant {
	s.tmu.Lock()
	defer s.tmu.Unlock()
	t, ok := s.tenants[name]
	if !ok {
		t = &tenant{
			requests: limiter.NewBucket(s.cfg.TenantRPS, s.cfg.TenantBurst, s.cfg.now()),
			gauge:    limiter.NewGauge(s.cfg.TenantConcurrency),
			reqCtr:   s.reg.Counter("netqueryd_tenant_requests_total", "tenant", name),
			shedCtr:  s.reg.Counter("netqueryd_tenant_shed_total", "tenant", name),
			badCtr:   s.reg.Counter("netqueryd_tenant_errors_total", "tenant", name),
			latency:  s.reg.Histogram("netqueryd_tenant_latency_ns", "tenant", name),
		}
		if thr := int64(s.cfg.SLOLatencyThreshold); thr > 0 {
			t.slowNS.Store(thr)
		} else {
			// Latency objective disabled: nothing is "slow" until the
			// dynamic p99-based threshold has samples to work from.
			t.slowNS.Store(int64(^uint64(0) >> 1))
		}
		s.tenants[name] = t
		s.registerObjectives(t.latency, t.badCtr, "tenant", name)
	}
	return t
}

// slowRefreshMinSamples is how many latency observations a tenant needs
// before its dynamic slow threshold trusts the observed p99 over the
// static SLO budget.
const slowRefreshMinSamples = 32

// HealthTick advances the health layer one step: the SLO engine samples
// every registered objective's cumulative tallies (extending the sliding
// windows burn rates are computed over), and each tenant's dynamic
// slow-query threshold is refreshed to p99 × FlightSlowFactor (the SLO
// latency budget until enough samples exist). netqueryd drives this from
// a ticker goroutine (-slo-tick); tests drive it directly.
func (s *Service) HealthTick() {
	if s.health != nil {
		s.health.Tick()
	}
	floor := int64(s.cfg.SLOLatencyThreshold)
	s.tmu.Lock()
	tenants := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		tenants = append(tenants, t)
	}
	s.tmu.Unlock()
	for _, t := range tenants {
		if t.latency.Count() < slowRefreshMinSamples {
			continue
		}
		thr := int64(float64(t.latency.Snapshot().Quantile(0.99)) * s.cfg.FlightSlowFactor)
		if thr < 1 {
			thr = 1
		}
		if floor > 0 && thr > floor {
			// The observed p99 may exceed the SLO budget; a query slower
			// than the declared budget is always notable, so the budget
			// caps the dynamic threshold from above while p99×k lowers it
			// for tenants whose normal traffic is far faster.
			thr = floor
		}
		t.slowNS.Store(thr)
	}
}

// Health exposes the SLO engine (nil when objectives are disabled), for
// /sloz and the diagnostic bundle.
func (s *Service) Health() *health.Engine { return s.health }

// Flight exposes the flight recorder (nil when disabled), for /flightz
// and the diagnostic bundle.
func (s *Service) Flight() *obs.FlightRecorder { return s.flight }

// VetCacheStats reports the vet-verdict cache's cumulative hits and misses
// and current entry count (for /metricsz and bundles).
func (s *Service) VetCacheStats() (hits, misses uint64, entries int) {
	s.vetMu.Lock()
	n := len(s.vetCache)
	s.vetMu.Unlock()
	return s.vetHits.Load(), s.vetMisses.Load(), n
}

// acquire pins the current epoch for one request. The retry loop covers
// the swap window where the loaded epoch closed before the inflight count
// was taken; a fresh Load then observes the new epoch.
func (s *Service) acquire() (*epoch, error) {
	for {
		if s.draining.Load() {
			return nil, ErrDraining
		}
		e := s.ep.Load()
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			continue
		}
		e.inflight++
		e.mu.Unlock()
		return e, nil
	}
}

// release undoes acquire; the last release of a closed epoch signals the
// drain waiter.
func (e *epoch) release() {
	e.mu.Lock()
	e.inflight--
	if e.closed && e.inflight == 0 {
		close(e.drained)
	}
	e.mu.Unlock()
}

// close marks the epoch closed and returns a channel that is closed once
// the last in-flight request releases (immediately when idle).
func (e *epoch) close() <-chan struct{} {
	e.mu.Lock()
	if !e.closed {
		e.closed = true
		if e.inflight == 0 {
			close(e.drained)
		}
	}
	e.mu.Unlock()
	return e.drained
}

// Swap atomically replaces the dataset: new arrivals clone from the new
// builder the moment it is installed, in-flight queries finish against the
// old epoch, and Swap returns only after the old epoch has fully drained —
// so the caller knows the old master is unreferenced and zero queries were
// dropped or answered from a torn state.
func (s *Service) Swap(name string, builder nemoeval.InstanceBuilder) error {
	if builder == nil {
		return fmt.Errorf("service: Swap requires a dataset builder")
	}
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	if s.draining.Load() {
		return ErrDraining
	}
	next := &epoch{name: name, builder: builder, drained: make(chan struct{})}
	old := s.ep.Swap(next)
	<-old.close()
	s.swaps.Inc()
	return nil
}

// Drain stops admitting new queries and blocks until every in-flight
// query has finished or ctx expires. After Drain the service permanently
// returns ErrDraining.
func (s *Service) Drain(ctx context.Context) error {
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	s.draining.Store(true)
	done := s.ep.Load().close()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: drain interrupted: %w", ctx.Err())
	}
}

// chooseBackend resolves the substrate for one request under the current
// breaker state, returning the substrate, the program source, and whether
// the breaker degraded the request away from its preferred substrate.
func (s *Service) chooseBackend(req *Request) (backend, src string, degraded bool, err error) {
	var q queries.Query
	if req.QueryID != "" {
		var ok bool
		q, ok = queries.ByID(req.QueryID)
		if !ok {
			return "", "", false, &QueryError{Class: string(nql.ErrName),
				Err: fmt.Errorf("service: unknown query id %q", req.QueryID)}
		}
	}
	pick := func(b string) (string, bool) {
		if req.QueryID == "" {
			return req.Query, true
		}
		src, ok := q.Golden[b]
		return src, ok
	}
	preferred := req.Backend
	if preferred == "" {
		if req.QueryID == "" {
			// Raw programs default to the federated backend, which binds
			// every substrate's environment at once.
			preferred = prompt.BackendFederated
		} else {
			preferred = s.cheapestHealthy(q)
			if preferred == "" {
				return "", "", false, &UnavailableError{Backend: "all"}
			}
		}
	}
	br, ok := s.breakers[preferred]
	if !ok {
		return "", "", false, &QueryError{Class: string(nql.ErrValue),
			Err: fmt.Errorf("service: unknown backend %q (have %v)", preferred, substrateCost)}
	}
	if src, ok := pick(preferred); ok && br.Allow() {
		return preferred, src, false, nil
	}
	// Preferred substrate is open (or lacks a golden): catalog queries
	// degrade to the cheapest healthy substrate, raw programs cannot — the
	// service has no way to translate them.
	if req.QueryID == "" {
		return "", "", false, &UnavailableError{Backend: preferred}
	}
	if b := s.cheapestHealthy(q); b != "" && b != preferred {
		src, _ := pick(b)
		return b, src, true, nil
	}
	return "", "", false, &UnavailableError{Backend: preferred}
}

// vetQuery runs the semantic analyzer over a raw program: the cached
// surface-independent pass (sandbox.Vet) plus name resolution against the
// request's backend surface. Error-severity findings reject the request;
// warnings never do — the analyzer's advisory rules must not change what
// the service accepts.
func (s *Service) vetQuery(req *Request) *VetError {
	key := vetKey{backend: req.Backend, query: req.Query}
	s.vetMu.Lock()
	verr, ok := s.vetCache[key]
	s.vetMu.Unlock()
	if ok {
		s.vetHits.Add(1)
		return verr
	}
	s.vetMisses.Add(1)
	verr = s.vetQuerySlow(req)
	s.vetMu.Lock()
	if len(s.vetCache) < vetCacheMax {
		s.vetCache[key] = verr
	}
	s.vetMu.Unlock()
	return verr
}

// vetQuerySlow computes the verdict vetQuery caches: surface-independent
// analysis from the sandbox's program cache plus name resolution against
// the requested backend's binding surface.
func (s *Service) vetQuerySlow(req *Request) *VetError {
	diags, err := sandbox.Vet(req.Query)
	if err != nil {
		return &VetError{Diags: []analysis.Diagnostic{analysis.SyntaxDiagnostic(err)}}
	}
	backend := req.Backend
	if backend == "" {
		backend = prompt.BackendFederated // chooseBackend's raw-query default
	}
	// An unknown backend string yields a nil surface (name rules off);
	// chooseBackend rejects the backend itself right after admission.
	if prog, cerr := sandbox.Compile(req.Query); cerr == nil {
		diags = append(diags[:len(diags):len(diags)],
			analysis.CheckNames(prog, nemoeval.StaticGlobals(backend))...)
	}
	var errs []analysis.Diagnostic
	for _, d := range diags {
		if d.Severity == analysis.Error {
			errs = append(errs, d)
		}
	}
	if len(errs) == 0 {
		return nil
	}
	sort.SliceStable(errs, func(i, j int) bool { return errs[i].Line < errs[j].Line })
	return &VetError{Diags: errs}
}

// cheapestHealthy returns the cheapest substrate whose breaker admits
// requests and which has a golden program for q ("" when none qualifies).
func (s *Service) cheapestHealthy(q queries.Query) string {
	for _, b := range substrateCost {
		if _, ok := q.Golden[b]; !ok {
			continue
		}
		if s.breakers[b].Allow() {
			return b
		}
	}
	return ""
}

// Flight-record classes for requests that never executed; executed
// requests carry their result class ("timeout", "disconnect", "error") or
// a notability class ("slow", "sampled") instead.
const (
	flightClassStatic      = "static"       // rejected by static analysis
	flightClassShed        = "shed"         // rejected by admission control
	flightClassBreakerOpen = "breaker-open" // no admissible substrate
	flightClassDraining    = "draining"     // service shutting down
	flightClassSlow        = "slow"         // ok, but over the slow threshold
	flightClassSampled     = "sampled"      // ok, kept as workload context
)

// flightDetail carries the execution-side fields of a flight record;
// zero-valued for requests rejected before execution.
type flightDetail struct {
	progHash string
	planFP   string
	traceID  string
	execNS   int64
}

// recordFlight writes one record into the flight recorder (no-op when the
// recorder is disabled). Queue time is everything outside sandbox
// execution: vetting, admission, routing, binding.
func (s *Service) recordFlight(start time.Time, req *Request, backend, class, result string, det flightDetail) {
	if s.flight == nil {
		return
	}
	total := s.cfg.now().Sub(start).Nanoseconds()
	queue := total - det.execNS
	if queue < 0 {
		queue = 0
	}
	s.flight.Record(obs.FlightRecord{
		StartUnixNS: start.UnixNano(),
		Tenant:      req.Tenant,
		Backend:     backend,
		QueryID:     req.QueryID,
		ProgramHash: det.progHash,
		PlanFP:      det.planFP,
		TraceID:     det.traceID,
		Class:       class,
		Result:      result,
		QueueNS:     queue,
		ExecNS:      det.execNS,
		TotalNS:     total,
	})
}

// Do executes one request. It returns a *ShedError when admission rejects
// it, ErrDraining during shutdown, an *UnavailableError when no substrate
// can serve it, and a *QueryError when execution fails (class "cancelled"
// for deadline-exceeded or client-disconnected queries).
func (s *Service) Do(ctx context.Context, req *Request) (*Response, error) {
	reqStart := s.cfg.now()
	if req.Tenant == "" {
		return nil, &QueryError{Class: string(nql.ErrValue), Err: fmt.Errorf("service: request has no tenant")}
	}
	if (req.Query == "") == (req.QueryID == "") {
		return nil, &QueryError{Class: string(nql.ErrValue),
			Err: fmt.Errorf("service: request must carry exactly one of query, query_id")}
	}

	// Static vetting, deliberately ahead of admission: a provably-broken
	// raw program is rejected without taking a token from the tenant's
	// bucket or a concurrency slot — the tenant's budget stays for
	// programs that can actually run. Catalog queries skip this: their
	// goldens are vetted in CI (nqlvet -registry). The vet itself is
	// cached per source, so retried garbage costs one map lookup.
	if req.Query != "" {
		if verr := s.vetQuery(req); verr != nil {
			s.vetRejects.Inc()
			s.recordFlight(reqStart, req, "", flightClassStatic, "rejected", flightDetail{})
			return nil, verr
		}
	}

	// Admission: shed over-budget work before paying for anything else.
	t := s.tenantState(req.Tenant)
	t.reqCtr.Inc()
	ok, retryAfter := t.requests.TryTake(1, s.cfg.now())
	if !ok {
		s.resShed.Inc()
		t.shedCtr.Inc()
		s.recordFlight(reqStart, req, "", flightClassShed, "shed", flightDetail{})
		return nil, &ShedError{Reason: "request rate", RetryAfter: retryAfter}
	}
	if !t.gauge.Acquire() {
		s.resShed.Inc()
		t.shedCtr.Inc()
		s.recordFlight(reqStart, req, "", flightClassShed, "shed", flightDetail{})
		return nil, &ShedError{Reason: "concurrency", RetryAfter: 10 * time.Millisecond}
	}
	defer t.gauge.Release()

	backend, src, degraded, err := s.chooseBackend(req)
	if err != nil {
		var unavail *UnavailableError
		if errors.As(err, &unavail) {
			s.recordFlight(reqStart, req, unavail.Backend, flightClassBreakerOpen, "unavailable", flightDetail{})
		}
		return nil, err
	}

	timeout := req.Timeout
	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	// Tracing: profiled requests are always traced; otherwise the sampler
	// admits one arrival per traceEvery. Untraced requests leave tr nil
	// and every span operation below no-ops.
	var tr *obs.Trace
	if req.Profile || (s.traceEvery > 0 && s.traceSeq.Add(1)%s.traceEvery == 0) {
		tr = obs.NewTrace(fmt.Sprintf("%s-%d", req.Tenant, s.traceID.Add(1)))
		ctx = obs.WithTrace(ctx, tr)
	}
	ctx, root := obs.StartSpan(ctx, "query")
	root.Tag("tenant", req.Tenant)
	root.Tag("backend", backend)
	if req.QueryID != "" {
		root.Tag("query_id", req.QueryID)
	}
	defer func() {
		root.End()
		if tr != nil {
			s.traces.add(tr)
		}
	}()

	// Profiling: the operator profile rides the context (federate and
	// sqldb pick it up), the VM profile rides the sandbox policy.
	var prof *obs.Profile
	var vmProf *nql.VMProfile
	if req.Profile {
		prof = obs.NewProfile()
		vmProf = nql.NewVMProfile()
		ctx = obs.WithProfile(ctx, prof)
	}

	// Plan notes: federated plans executed under this request note their
	// fingerprints, so a flight record for a slow or failed request names
	// the exact plan shapes it ran (correlatable with the plan cache and
	// reproducible via Explain).
	var notes *federate.PlanNotes
	if s.flight != nil {
		notes = &federate.PlanNotes{}
		ctx = federate.WithPlanNotes(ctx, notes)
	}

	ep, err := s.acquire()
	if err != nil {
		s.recordFlight(reqStart, req, backend, flightClassDraining, "unavailable", flightDetail{})
		return nil, err
	}
	defer ep.release()
	s.inflight.Add(1)
	defer s.inflight.Add(-1)

	bctx, bind := obs.StartSpan(ctx, "bind")
	inst := ep.builder()
	globals := inst.Bindings(backend)
	bind.End()
	_, exec := obs.StartSpan(bctx, "execute")
	policy := s.cfg.Policy
	policy.Context = ctx
	policy.Profile = vmProf

	// Compile through the shared program cache, then execute: splitting
	// the two (rather than sandbox.Run) yields the program's source hash
	// for the flight record. A compile failure takes the same shape
	// sandbox.Run would give it — an internal-class execution error.
	var res *sandbox.Result
	var progHash string
	start := s.cfg.now()
	if prog, cerr := sandbox.Compile(src); cerr != nil {
		res = &sandbox.Result{Err: cerr, ErrClass: nql.ClassOf(cerr)}
	} else {
		progHash = prog.HashString()
		res = sandbox.RunProgram(prog, globals, policy)
	}
	d := s.cfg.now().Sub(start)
	exec.TagInt("steps", int64(res.Steps))
	exec.End()

	traceID := ""
	if tr != nil {
		traceID = tr.ID
	}
	t.latency.ObserveExemplar(int64(d), traceID)
	s.backendCtr[backend].Inc()
	s.backendLat[backend].ObserveExemplar(int64(d), traceID)

	// Feed the breaker: only our own deadline firing counts as a substrate
	// timeout — a client disconnect says nothing about substrate health.
	// The two are split in the result counters too: "timeout" is the
	// server's deadline, "disconnect" is the client abandoning the query.
	timedOut := errors.Is(res.Err, context.DeadlineExceeded)
	disconnected := !timedOut && errors.Is(res.Err, context.Canceled)
	s.breakers[backend].Record(timedOut)
	if degraded {
		s.degraded.Inc()
	}
	detail := flightDetail{progHash: progHash, planFP: notes.Joined(), traceID: traceID, execNS: int64(d)}
	if res.Err != nil {
		var result string
		switch {
		case timedOut:
			s.resTimeout.Inc()
			result = "timeout"
		case disconnected:
			s.resDisconnect.Inc()
			result = "disconnect"
		default:
			s.resError.Inc()
			result = "error"
		}
		// Availability SLO accounting: timeouts and execution errors are
		// the server failing the tenant; a disconnect is the client's own
		// cancellation and burns no error budget.
		if !disconnected {
			t.badCtr.Inc()
			s.backendBad[backend].Inc()
		}
		s.recordFlight(reqStart, req, backend, result, result, detail)
		return nil, &QueryError{Class: res.ErrClass, Err: res.Err}
	}
	s.resOK.Inc()
	if int64(d) >= t.slowNS.Load() {
		s.recordFlight(reqStart, req, backend, flightClassSlow, "ok", detail)
	} else if s.flight.Admit() {
		s.recordFlight(reqStart, req, backend, flightClassSampled, "ok", detail)
	}
	resp := &Response{
		Value:    res.Value,
		Result:   nql.Repr(res.Value),
		Stdout:   res.Stdout,
		Backend:  backend,
		Dataset:  ep.name,
		Degraded: degraded,
		Duration: d,
	}
	if req.Profile {
		root.End() // fix the root span before snapshotting
		resp.Profile = &QueryProfile{
			TraceID:   tr.ID,
			Operators: prof.Flatten(),
			VM:        vmProf.Report(),
			Spans:     tr.Snapshot(),
		}
	}
	return resp, nil
}

// Stats is a counter snapshot for /statsz and tests, derived from the
// same obs registry /metricsz renders.
type Stats struct {
	Served      int64             // successful executions
	Shed        int64             // rejected by admission control
	Timeouts    int64             // server-deadline-exceeded executions
	Disconnects int64             // client-disconnect-cancelled executions
	Failures    int64             // other execution failures
	Degraded    int64             // requests rerouted by an open breaker
	Swaps       int64             // completed dataset swaps
	Inflight    int               // queries running right now
	Dataset     string            // current epoch name
	Breakers    map[string]string // substrate → breaker state
}

// Stats snapshots the service counters and breaker states.
func (s *Service) Stats() Stats {
	e := s.ep.Load()
	e.mu.Lock()
	inflight := e.inflight
	name := e.name
	e.mu.Unlock()
	st := Stats{
		Served:      s.resOK.Load(),
		Shed:        s.resShed.Load(),
		Timeouts:    s.resTimeout.Load(),
		Disconnects: s.resDisconnect.Load(),
		Failures:    s.resError.Load(),
		Degraded:    s.degraded.Load(),
		Swaps:       s.swaps.Load(),
		Inflight:    inflight,
		Dataset:     name,
		Breakers:    map[string]string{},
	}
	for b, br := range s.breakers {
		st.Breakers[b] = br.State()
	}
	return st
}

// Metrics returns the registry the service records into, for mounting on
// /metricsz (possibly shared with other components).
func (s *Service) Metrics() *obs.Registry { return s.reg }

// RecentTraces snapshots the most recent sampled traces, oldest first.
func (s *Service) RecentTraces() []*obs.Trace { return s.traces.recent() }

// Substrates lists the substrates the service routes across, cheapest
// first (the breaker-degradation order).
func Substrates() []string {
	out := append([]string(nil), substrateCost...)
	return out
}

// TenantNames lists tenants that have submitted at least one request,
// sorted (for /statsz determinism).
func (s *Service) TenantNames() []string {
	s.tmu.Lock()
	defer s.tmu.Unlock()
	out := make([]string, 0, len(s.tenants))
	for n := range s.tenants {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

package service

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/limiter"
	"repro/internal/nemoeval"
	"repro/internal/nql"
	"repro/internal/prompt"
	"repro/internal/queries"
	"repro/internal/sandbox"
)

// substrateCost orders the execution substrates by how much work a fresh
// request costs: the graph (networkx) substrate clones copy-on-write and
// binds immediately, the relational substrates pay a lazy table build, and
// the federated backend binds everything at once. Degraded catalog queries
// fall to the cheapest healthy substrate in this order.
var substrateCost = []string{
	prompt.BackendNetworkX,
	prompt.BackendPandas,
	prompt.BackendSQL,
	prompt.BackendFederated,
}

// Config tunes a Service. The zero value of every field except Dataset
// selects a sane default.
type Config struct {
	// Dataset builds instances of the initial dataset epoch (required).
	Dataset nemoeval.InstanceBuilder
	// DatasetName labels the initial epoch in responses and /healthz.
	DatasetName string

	// TenantRPS caps each tenant's admitted requests per second (default
	// 50; the bucket sheds, it never queues).
	TenantRPS float64
	// TenantBurst is the request bucket's burst capacity (default 16).
	TenantBurst float64
	// TenantConcurrency caps each tenant's in-flight queries (default 8;
	// negative means unlimited).
	TenantConcurrency int

	// DefaultTimeout applies when a request carries no deadline of its own
	// (default 2s). MaxTimeout caps client-requested timeouts (default 10s).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration

	// BreakerThreshold consecutive timeouts trip a substrate's breaker
	// (default 5); BreakerCooldown is how long it stays open (default 1s).
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// Policy is the sandbox resource budget for query execution; the zero
	// value selects sandbox.DefaultPolicy. The per-request context always
	// overrides Policy.Context.
	Policy sandbox.Policy

	// now is the clock hook, swappable in tests.
	now func() time.Time
}

// Request is one query submission.
type Request struct {
	// Tenant names the submitting tenant (required; admission state is
	// created on first use).
	Tenant string
	// Query is a raw NQL program. Mutually exclusive with QueryID.
	Query string
	// QueryID names a catalog query (see internal/queries); the service
	// runs its golden program for the chosen substrate, which is what
	// makes breaker degradation possible.
	QueryID string
	// Backend pins a substrate ("networkx", "pandas", "sql", "federated");
	// empty means auto (cheapest healthy for catalog queries, federated
	// for raw programs).
	Backend string
	// Timeout bounds execution (0 = DefaultTimeout, capped at MaxTimeout).
	Timeout time.Duration
}

// Response is one successful execution.
type Response struct {
	Value    nql.Value     // program return value
	Result   string        // nql.Repr rendering of Value
	Stdout   string        // captured print() output
	Backend  string        // substrate actually used
	Dataset  string        // epoch the query ran against
	Degraded bool          // true when the breaker rerouted the substrate
	Duration time.Duration // execution wall time
}

// ShedError reports a request rejected by admission control; RetryAfter
// hints when the tenant's budget will admit it.
type ShedError struct {
	Reason     string
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("service: over budget (%s), retry after %s", e.Reason, e.RetryAfter)
}

// UnavailableError reports that every admissible substrate's breaker is
// open (or the pinned substrate is open and the request cannot degrade).
type UnavailableError struct{ Backend string }

func (e *UnavailableError) Error() string {
	return fmt.Sprintf("service: substrate %q unavailable (circuit open)", e.Backend)
}

// QueryError wraps an execution failure with its NQL error class;
// class "cancelled" with a deadline cause means the request timed out.
type QueryError struct {
	Class string
	Err   error
}

func (e *QueryError) Error() string { return e.Err.Error() }
func (e *QueryError) Unwrap() error { return e.Err }

// ErrDraining is returned once Drain has begun: the service is shutting
// down and admits no new work.
var ErrDraining = errors.New("service: draining, not admitting new queries")

// epoch is one dataset generation. Requests acquire the current epoch,
// clone an instance from its builder, and release it when done; Swap
// closes the old epoch and waits for its inflight count to drain before
// declaring the flip complete.
type epoch struct {
	name    string
	builder nemoeval.InstanceBuilder

	mu       sync.Mutex
	inflight int
	closed   bool
	drained  chan struct{}
}

// tenant is one tenant's admission state.
type tenant struct {
	requests *limiter.Bucket
	gauge    *limiter.Gauge
}

// Service is the netqueryd query engine. Safe for concurrent use.
type Service struct {
	cfg Config

	ep       atomic.Pointer[epoch]
	swapMu   sync.Mutex // serializes Swap/Drain
	draining atomic.Bool

	tmu     sync.Mutex
	tenants map[string]*tenant

	breakers map[string]*Breaker

	served   atomic.Int64
	shed     atomic.Int64
	timeouts atomic.Int64
	failures atomic.Int64
	degraded atomic.Int64
	swaps    atomic.Int64
}

// New builds a service over cfg, applying defaults.
func New(cfg Config) (*Service, error) {
	if cfg.Dataset == nil {
		return nil, fmt.Errorf("service: Config.Dataset is required")
	}
	if cfg.DatasetName == "" {
		cfg.DatasetName = "default"
	}
	if cfg.TenantRPS <= 0 {
		cfg.TenantRPS = 50
	}
	if cfg.TenantBurst <= 0 {
		cfg.TenantBurst = 16
	}
	if cfg.TenantConcurrency == 0 {
		cfg.TenantConcurrency = 8
	} else if cfg.TenantConcurrency < 0 {
		cfg.TenantConcurrency = 0 // limiter.Gauge: 0 = unlimited
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 2 * time.Second
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 10 * time.Second
	}
	if cfg.Policy == (sandbox.Policy{}) {
		cfg.Policy = sandbox.DefaultPolicy
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	s := &Service{
		cfg:      cfg,
		tenants:  map[string]*tenant{},
		breakers: map[string]*Breaker{},
	}
	for _, b := range substrateCost {
		s.breakers[b] = NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, cfg.now)
	}
	first := &epoch{name: cfg.DatasetName, builder: cfg.Dataset, drained: make(chan struct{})}
	s.ep.Store(first)
	return s, nil
}

// tenantState returns (creating on first use) one tenant's admission state.
func (s *Service) tenantState(name string) *tenant {
	s.tmu.Lock()
	defer s.tmu.Unlock()
	t, ok := s.tenants[name]
	if !ok {
		t = &tenant{
			requests: limiter.NewBucket(s.cfg.TenantRPS, s.cfg.TenantBurst, s.cfg.now()),
			gauge:    limiter.NewGauge(s.cfg.TenantConcurrency),
		}
		s.tenants[name] = t
	}
	return t
}

// acquire pins the current epoch for one request. The retry loop covers
// the swap window where the loaded epoch closed before the inflight count
// was taken; a fresh Load then observes the new epoch.
func (s *Service) acquire() (*epoch, error) {
	for {
		if s.draining.Load() {
			return nil, ErrDraining
		}
		e := s.ep.Load()
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			continue
		}
		e.inflight++
		e.mu.Unlock()
		return e, nil
	}
}

// release undoes acquire; the last release of a closed epoch signals the
// drain waiter.
func (e *epoch) release() {
	e.mu.Lock()
	e.inflight--
	if e.closed && e.inflight == 0 {
		close(e.drained)
	}
	e.mu.Unlock()
}

// close marks the epoch closed and returns a channel that is closed once
// the last in-flight request releases (immediately when idle).
func (e *epoch) close() <-chan struct{} {
	e.mu.Lock()
	if !e.closed {
		e.closed = true
		if e.inflight == 0 {
			close(e.drained)
		}
	}
	e.mu.Unlock()
	return e.drained
}

// Swap atomically replaces the dataset: new arrivals clone from the new
// builder the moment it is installed, in-flight queries finish against the
// old epoch, and Swap returns only after the old epoch has fully drained —
// so the caller knows the old master is unreferenced and zero queries were
// dropped or answered from a torn state.
func (s *Service) Swap(name string, builder nemoeval.InstanceBuilder) error {
	if builder == nil {
		return fmt.Errorf("service: Swap requires a dataset builder")
	}
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	if s.draining.Load() {
		return ErrDraining
	}
	next := &epoch{name: name, builder: builder, drained: make(chan struct{})}
	old := s.ep.Swap(next)
	<-old.close()
	s.swaps.Add(1)
	return nil
}

// Drain stops admitting new queries and blocks until every in-flight
// query has finished or ctx expires. After Drain the service permanently
// returns ErrDraining.
func (s *Service) Drain(ctx context.Context) error {
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	s.draining.Store(true)
	done := s.ep.Load().close()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: drain interrupted: %w", ctx.Err())
	}
}

// chooseBackend resolves the substrate for one request under the current
// breaker state, returning the substrate, the program source, and whether
// the breaker degraded the request away from its preferred substrate.
func (s *Service) chooseBackend(req *Request) (backend, src string, degraded bool, err error) {
	var q queries.Query
	if req.QueryID != "" {
		var ok bool
		q, ok = queries.ByID(req.QueryID)
		if !ok {
			return "", "", false, &QueryError{Class: string(nql.ErrName),
				Err: fmt.Errorf("service: unknown query id %q", req.QueryID)}
		}
	}
	pick := func(b string) (string, bool) {
		if req.QueryID == "" {
			return req.Query, true
		}
		src, ok := q.Golden[b]
		return src, ok
	}
	preferred := req.Backend
	if preferred == "" {
		if req.QueryID == "" {
			// Raw programs default to the federated backend, which binds
			// every substrate's environment at once.
			preferred = prompt.BackendFederated
		} else {
			preferred = s.cheapestHealthy(q)
			if preferred == "" {
				return "", "", false, &UnavailableError{Backend: "all"}
			}
		}
	}
	br, ok := s.breakers[preferred]
	if !ok {
		return "", "", false, &QueryError{Class: string(nql.ErrValue),
			Err: fmt.Errorf("service: unknown backend %q (have %v)", preferred, substrateCost)}
	}
	if src, ok := pick(preferred); ok && br.Allow() {
		return preferred, src, false, nil
	}
	// Preferred substrate is open (or lacks a golden): catalog queries
	// degrade to the cheapest healthy substrate, raw programs cannot — the
	// service has no way to translate them.
	if req.QueryID == "" {
		return "", "", false, &UnavailableError{Backend: preferred}
	}
	if b := s.cheapestHealthy(q); b != "" && b != preferred {
		src, _ := pick(b)
		return b, src, true, nil
	}
	return "", "", false, &UnavailableError{Backend: preferred}
}

// cheapestHealthy returns the cheapest substrate whose breaker admits
// requests and which has a golden program for q ("" when none qualifies).
func (s *Service) cheapestHealthy(q queries.Query) string {
	for _, b := range substrateCost {
		if _, ok := q.Golden[b]; !ok {
			continue
		}
		if s.breakers[b].Allow() {
			return b
		}
	}
	return ""
}

// Do executes one request. It returns a *ShedError when admission rejects
// it, ErrDraining during shutdown, an *UnavailableError when no substrate
// can serve it, and a *QueryError when execution fails (class "cancelled"
// for deadline-exceeded or client-disconnected queries).
func (s *Service) Do(ctx context.Context, req *Request) (*Response, error) {
	if req.Tenant == "" {
		return nil, &QueryError{Class: string(nql.ErrValue), Err: fmt.Errorf("service: request has no tenant")}
	}
	if (req.Query == "") == (req.QueryID == "") {
		return nil, &QueryError{Class: string(nql.ErrValue),
			Err: fmt.Errorf("service: request must carry exactly one of query, query_id")}
	}

	// Admission: shed over-budget work before paying for anything else.
	t := s.tenantState(req.Tenant)
	ok, retryAfter := t.requests.TryTake(1, s.cfg.now())
	if !ok {
		s.shed.Add(1)
		return nil, &ShedError{Reason: "request rate", RetryAfter: retryAfter}
	}
	if !t.gauge.Acquire() {
		s.shed.Add(1)
		return nil, &ShedError{Reason: "concurrency", RetryAfter: 10 * time.Millisecond}
	}
	defer t.gauge.Release()

	backend, src, degraded, err := s.chooseBackend(req)
	if err != nil {
		return nil, err
	}

	timeout := req.Timeout
	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	ep, err := s.acquire()
	if err != nil {
		return nil, err
	}
	defer ep.release()

	inst := ep.builder()
	policy := s.cfg.Policy
	policy.Context = ctx
	start := s.cfg.now()
	res := sandbox.Run(src, inst.Bindings(backend), policy)

	// Feed the breaker: only our own deadline firing counts as a substrate
	// timeout — a client disconnect says nothing about substrate health.
	timedOut := errors.Is(res.Err, context.DeadlineExceeded)
	s.breakers[backend].Record(timedOut)
	if degraded {
		s.degraded.Add(1)
	}
	if res.Err != nil {
		if timedOut {
			s.timeouts.Add(1)
		} else {
			s.failures.Add(1)
		}
		return nil, &QueryError{Class: res.ErrClass, Err: res.Err}
	}
	s.served.Add(1)
	return &Response{
		Value:    res.Value,
		Result:   nql.Repr(res.Value),
		Stdout:   res.Stdout,
		Backend:  backend,
		Dataset:  ep.name,
		Degraded: degraded,
		Duration: s.cfg.now().Sub(start),
	}, nil
}

// Stats is a counter snapshot for /statsz and tests.
type Stats struct {
	Served   int64             // successful executions
	Shed     int64             // rejected by admission control
	Timeouts int64             // deadline-exceeded executions
	Failures int64             // other execution failures
	Degraded int64             // requests rerouted by an open breaker
	Swaps    int64             // completed dataset swaps
	Inflight int               // queries running right now
	Dataset  string            // current epoch name
	Breakers map[string]string // substrate → breaker state
}

// Stats snapshots the service counters and breaker states.
func (s *Service) Stats() Stats {
	e := s.ep.Load()
	e.mu.Lock()
	inflight := e.inflight
	name := e.name
	e.mu.Unlock()
	st := Stats{
		Served:   s.served.Load(),
		Shed:     s.shed.Load(),
		Timeouts: s.timeouts.Load(),
		Failures: s.failures.Load(),
		Degraded: s.degraded.Load(),
		Swaps:    s.swaps.Load(),
		Inflight: inflight,
		Dataset:  name,
		Breakers: map[string]string{},
	}
	for b, br := range s.breakers {
		st.Breakers[b] = br.State()
	}
	return st
}

// Substrates lists the substrates the service routes across, cheapest
// first (the breaker-degradation order).
func Substrates() []string {
	out := append([]string(nil), substrateCost...)
	return out
}

// TenantNames lists tenants that have submitted at least one request,
// sorted (for /statsz determinism).
func (s *Service) TenantNames() []string {
	s.tmu.Lock()
	defer s.tmu.Unlock()
	out := make([]string, 0, len(s.tenants))
	for n := range s.tenants {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

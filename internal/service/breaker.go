package service

import (
	"sync"
	"time"
)

// Breaker states, as reported by Breaker.State and the /healthz endpoint.
const (
	BreakerClosed   = "closed"    // substrate healthy, requests flow
	BreakerOpen     = "open"      // tripped, requests rerouted until cooldown
	BreakerHalfOpen = "half-open" // cooldown elapsed, probes allowed through
)

// Breaker is a per-substrate circuit breaker. It trips open after
// Threshold consecutive deadline-exceeded executions, rejects the substrate
// for Cooldown, then goes half-open: probes are admitted again, one success
// closes the circuit, another timeout re-opens it for a fresh cooldown.
// Only timeouts count as failures — query bugs (bad SQL, imaginary
// attributes) say nothing about substrate health and never trip it.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu          sync.Mutex
	consecutive int
	openUntil   time.Time
	trips       int64
}

// NewBreaker builds a breaker tripping after threshold consecutive
// timeouts and cooling down for cooldown before probing again.
func NewBreaker(threshold int, cooldown time.Duration, now func() time.Time) *Breaker {
	if threshold <= 0 {
		threshold = 5
	}
	if cooldown <= 0 {
		cooldown = time.Second
	}
	if now == nil {
		now = time.Now
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: now}
}

// Allow reports whether a request may use this substrate right now:
// true when closed or half-open, false while open (inside a cooldown).
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.consecutive < b.threshold || !b.now().Before(b.openUntil)
}

// Record feeds one execution outcome back: a timeout advances the
// consecutive-failure count (tripping or re-tripping the breaker at the
// threshold); anything else closes the circuit.
func (b *Breaker) Record(timeout bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !timeout {
		b.consecutive = 0
		return
	}
	b.consecutive++
	if b.consecutive >= b.threshold {
		if b.consecutive == b.threshold {
			b.trips++
		}
		// A half-open probe that times out re-arms the full cooldown.
		b.openUntil = b.now().Add(b.cooldown)
	}
}

// State names the breaker's current state.
func (b *Breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.consecutive < b.threshold {
		return BreakerClosed
	}
	if b.now().Before(b.openUntil) {
		return BreakerOpen
	}
	return BreakerHalfOpen
}

// Trips returns how many times the breaker has transitioned closed → open.
func (b *Breaker) Trips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

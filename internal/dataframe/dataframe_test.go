package dataframe

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func sample() *Frame {
	f := New("node", "prefix", "bytes", "load")
	f.AppendRow("a", "15.76", 100, 0.5)
	f.AppendRow("b", "15.76", 300, 0.9)
	f.AppendRow("c", "10.0", 200, 0.1)
	f.AppendRow("d", "10.0", 50, 0.7)
	return f
}

func TestNewAndAppend(t *testing.T) {
	f := sample()
	if f.NumRows() != 4 || f.NumCols() != 4 {
		t.Fatalf("dims = %dx%d", f.NumRows(), f.NumCols())
	}
	v, err := f.Cell(1, "bytes")
	if err != nil || v != int64(300) {
		t.Fatalf("cell = %v err=%v", v, err)
	}
}

func TestDuplicateColumnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate column")
		}
	}()
	New("a", "a")
}

func TestAppendRowArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on arity mismatch")
		}
	}()
	New("a", "b").AppendRow(1)
}

func TestUnknownColumnErrors(t *testing.T) {
	f := sample()
	if _, err := f.Column("imaginary"); err == nil {
		t.Fatal("expected error for imaginary column")
	}
	if _, err := f.Cell(0, "imaginary"); err == nil {
		t.Fatal("expected error")
	}
	if _, err := f.Select("node", "imaginary"); err == nil {
		t.Fatal("expected error")
	}
	if _, err := f.SortBy(true, "imaginary"); err == nil {
		t.Fatal("expected error")
	}
	if _, err := f.GroupBy("imaginary"); err == nil {
		t.Fatal("expected error")
	}
	if _, err := f.Drop("imaginary"); err == nil {
		t.Fatal("expected error")
	}
}

func TestCellRange(t *testing.T) {
	f := sample()
	if _, err := f.Cell(99, "node"); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if err := f.SetCell(-1, "node", "x"); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

func TestFromRecords(t *testing.T) {
	f := FromRecords([]string{"x", "y"}, []map[string]any{
		{"x": 1, "y": "a", "extra": true},
		{"x": 2},
	})
	if f.NumRows() != 2 {
		t.Fatalf("rows = %d", f.NumRows())
	}
	if v, _ := f.Cell(1, "y"); v != nil {
		t.Fatalf("missing key should be nil, got %v", v)
	}
	if f.HasColumn("extra") {
		t.Fatal("extra key leaked into schema")
	}
}

func TestFilter(t *testing.T) {
	f := sample()
	big, err := f.Filter(func(r map[string]any) (bool, error) {
		return r["bytes"].(int64) >= 200, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if big.NumRows() != 2 {
		t.Fatalf("filtered = %d rows", big.NumRows())
	}
	eq, err := f.FilterEq("prefix", "15.76")
	if err != nil || eq.NumRows() != 2 {
		t.Fatalf("eq = %v err=%v", eq, err)
	}
	if _, err := f.FilterEq("ghost", 1); err == nil {
		t.Fatal("expected error")
	}
}

func TestFilterPropagatesError(t *testing.T) {
	f := sample()
	if _, err := f.Filter(func(map[string]any) (bool, error) {
		return false, fmt.Errorf("boom")
	}); err == nil {
		t.Fatal("expected error propagation")
	}
}

func TestSortBy(t *testing.T) {
	f := sample()
	s, err := f.SortBy(true, "bytes")
	if err != nil {
		t.Fatal(err)
	}
	col, _ := s.Column("bytes")
	want := []any{int64(50), int64(100), int64(200), int64(300)}
	if !reflect.DeepEqual(col, want) {
		t.Fatalf("sorted = %v", col)
	}
	d, _ := f.SortBy(false, "bytes")
	colD, _ := d.Column("bytes")
	if colD[0] != int64(300) {
		t.Fatalf("desc sorted = %v", colD)
	}
}

func TestSortByMultiKeyStable(t *testing.T) {
	f := New("g", "v")
	f.AppendRow("b", 1)
	f.AppendRow("a", 2)
	f.AppendRow("a", 1)
	f.AppendRow("b", 2)
	s, err := f.SortBy(true, "g", "v")
	if err != nil {
		t.Fatal(err)
	}
	gCol, _ := s.Column("g")
	vCol, _ := s.Column("v")
	if !reflect.DeepEqual(gCol, []any{"a", "a", "b", "b"}) || vCol[0] != int64(1) {
		t.Fatalf("multi-key sort = %v %v", gCol, vCol)
	}
}

func TestSelectDropRename(t *testing.T) {
	f := sample()
	sel, err := f.Select("bytes", "node")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sel.Columns(), []string{"bytes", "node"}) {
		t.Fatalf("select cols = %v", sel.Columns())
	}
	dr, err := f.Drop("load")
	if err != nil || dr.NumCols() != 3 {
		t.Fatalf("drop = %v err=%v", dr.Columns(), err)
	}
	rn, err := f.Rename("bytes", "weight")
	if err != nil || !rn.HasColumn("weight") || rn.HasColumn("bytes") {
		t.Fatalf("rename = %v err=%v", rn.Columns(), err)
	}
	if _, err := f.Rename("bytes", "node"); err == nil {
		t.Fatal("expected collision error")
	}
	if _, err := f.Rename("ghost", "x"); err == nil {
		t.Fatal("expected missing error")
	}
}

func TestHead(t *testing.T) {
	f := sample()
	if f.Head(2).NumRows() != 2 {
		t.Fatal("head 2")
	}
	if f.Head(99).NumRows() != 4 {
		t.Fatal("head clamp")
	}
	if f.Head(-1).NumRows() != 0 {
		t.Fatal("negative head")
	}
}

func TestMutate(t *testing.T) {
	f := sample()
	m, err := f.Mutate("kb", func(r map[string]any) (any, error) {
		return float64(r["bytes"].(int64)) / 1024.0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !m.HasColumn("kb") || m.NumCols() != 5 {
		t.Fatalf("mutate cols = %v", m.Columns())
	}
	if f.HasColumn("kb") {
		t.Fatal("mutate mutated the source")
	}
	// Replacing an existing column keeps arity.
	m2, err := m.Mutate("kb", func(r map[string]any) (any, error) { return 0, nil })
	if err != nil || m2.NumCols() != 5 {
		t.Fatalf("replace mutate = %v", m2.Columns())
	}
}

func TestUnique(t *testing.T) {
	f := sample()
	u, err := f.Unique("prefix")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(u, []any{"15.76", "10.0"}) {
		t.Fatalf("unique = %v", u)
	}
}

func TestGroupByAgg(t *testing.T) {
	f := sample()
	g, err := f.GroupBy("prefix")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumGroups() != 2 {
		t.Fatalf("groups = %d", g.NumGroups())
	}
	agg, err := g.Agg(
		AggSpec{Col: "bytes", Func: AggSum},
		AggSpec{Col: "bytes", Func: AggMean},
		AggSpec{Func: AggCount},
		AggSpec{Col: "load", Func: AggMax, Name: "peak"},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(agg.Columns(), []string{"prefix", "bytes_sum", "bytes_mean", "count", "peak"}) {
		t.Fatalf("agg cols = %v", agg.Columns())
	}
	r := agg.Row(0) // 15.76 group first (first appearance)
	if r["bytes_sum"] != int64(400) || r["bytes_mean"] != float64(200) || r["count"] != int64(2) || r["peak"] != float64(0.9) {
		t.Fatalf("agg row = %v", r)
	}
}

func TestAggFirstLastMin(t *testing.T) {
	f := sample()
	g, _ := f.GroupBy("prefix")
	agg, err := g.Agg(
		AggSpec{Col: "node", Func: AggFirst},
		AggSpec{Col: "node", Func: AggLast},
		AggSpec{Col: "bytes", Func: AggMin},
	)
	if err != nil {
		t.Fatal(err)
	}
	r := agg.Row(1) // 10.0 group: c then d
	if r["node_first"] != "c" || r["node_last"] != "d" || r["bytes_min"] != int64(50) {
		t.Fatalf("agg row = %v", r)
	}
}

func TestAggNonNumericErrors(t *testing.T) {
	f := sample()
	g, _ := f.GroupBy("prefix")
	if _, err := g.Agg(AggSpec{Col: "node", Func: AggSum}); err == nil {
		t.Fatal("expected error summing strings")
	}
	if _, err := g.Agg(AggSpec{Col: "ghost", Func: AggSum}); err == nil {
		t.Fatal("expected error for ghost column")
	}
	if _, err := g.Agg(AggSpec{Col: "bytes", Func: AggFunc("median")}); err == nil {
		t.Fatal("expected error for unknown agg")
	}
}

func TestWholeFrameStats(t *testing.T) {
	f := sample()
	if s, _ := f.Sum("bytes"); s != int64(650) {
		t.Fatalf("sum = %v", s)
	}
	if m, _ := f.Mean("bytes"); m != float64(162.5) {
		t.Fatalf("mean = %v", m)
	}
	if m, _ := f.Min("bytes"); m != int64(50) {
		t.Fatalf("min = %v", m)
	}
	if m, _ := f.Max("load"); m != float64(0.9) {
		t.Fatalf("max = %v", m)
	}
	empty := New("x")
	if m, _ := empty.Mean("x"); m != nil {
		t.Fatalf("empty mean = %v", m)
	}
	if m, _ := empty.Min("x"); m != nil {
		t.Fatalf("empty min = %v", m)
	}
}

func TestSumSkipsNil(t *testing.T) {
	f := New("v")
	f.AppendRow(nil)
	f.AppendRow(10)
	f.AppendRow(nil)
	if s, err := f.Sum("v"); err != nil || s != int64(10) {
		t.Fatalf("sum = %v err=%v", s, err)
	}
	if m, err := f.Mean("v"); err != nil || m != float64(10) {
		t.Fatalf("mean should skip nil = %v err=%v", m, err)
	}
}

func TestValueCounts(t *testing.T) {
	f := sample()
	vc, err := f.ValueCounts("prefix")
	if err != nil {
		t.Fatal(err)
	}
	if vc.NumRows() != 2 {
		t.Fatalf("vc = %v", vc)
	}
	// Both counts are 2; ties broken by value ascending → "10.0" first.
	if v, _ := vc.Cell(0, "prefix"); v != "10.0" {
		t.Fatalf("vc order = %v", vc)
	}
}

func TestMergeInner(t *testing.T) {
	nodes := New("id", "dc")
	nodes.AppendRow("a", "east")
	nodes.AppendRow("b", "west")
	nodes.AppendRow("c", "east")
	edges := New("src", "bytes")
	edges.AppendRow("a", 10)
	edges.AppendRow("a", 20)
	edges.AppendRow("z", 99)
	j, err := Merge(edges, nodes, "src", "id", InnerJoin)
	if err != nil {
		t.Fatal(err)
	}
	if j.NumRows() != 2 {
		t.Fatalf("inner join rows = %d", j.NumRows())
	}
	if v, _ := j.Cell(0, "dc"); v != "east" {
		t.Fatalf("joined value = %v", v)
	}
}

func TestMergeLeft(t *testing.T) {
	left := New("k", "v")
	left.AppendRow("x", 1)
	left.AppendRow("y", 2)
	right := New("k", "w")
	right.AppendRow("x", 10)
	j, err := Merge(left, right, "k", "k", LeftJoin)
	if err != nil {
		t.Fatal(err)
	}
	if j.NumRows() != 2 {
		t.Fatalf("left join rows = %d", j.NumRows())
	}
	if v, _ := j.Cell(1, "w"); v != nil {
		t.Fatalf("unmatched right should be nil, got %v", v)
	}
}

func TestMergeCollisionSuffix(t *testing.T) {
	a := New("k", "v")
	a.AppendRow("x", 1)
	b := New("k", "v")
	b.AppendRow("x", 2)
	j, err := Merge(a, b, "k", "k", InnerJoin)
	if err != nil {
		t.Fatal(err)
	}
	if !j.HasColumn("v_right") {
		t.Fatalf("cols = %v", j.Columns())
	}
}

func TestMergeErrors(t *testing.T) {
	a := New("k")
	b := New("k")
	if _, err := Merge(a, b, "ghost", "k", InnerJoin); err == nil {
		t.Fatal("expected left key error")
	}
	if _, err := Merge(a, b, "k", "ghost", InnerJoin); err == nil {
		t.Fatal("expected right key error")
	}
	if _, err := Merge(a, b, "k", "k", JoinKind("outer")); err == nil {
		t.Fatal("expected kind error")
	}
}

func TestConcat(t *testing.T) {
	a := New("x", "y")
	a.AppendRow(1, 2)
	b := New("y", "x") // different order, same set
	b.AppendRow(4, 3)
	c, err := Concat(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumRows() != 2 {
		t.Fatalf("concat rows = %d", c.NumRows())
	}
	if v, _ := c.Cell(1, "x"); v != int64(3) {
		t.Fatalf("concat realigned = %v", v)
	}
	d := New("z")
	if _, err := Concat(a, d); err == nil {
		t.Fatal("expected schema mismatch")
	}
}

func TestEqual(t *testing.T) {
	a := sample()
	if !Equal(a, a.Clone()) {
		t.Fatal("clone should be equal")
	}
	b := sample()
	b.SetCell(0, "bytes", 999)
	if Equal(a, b) {
		t.Fatal("cell difference not detected")
	}
	c, _ := a.Select("node", "bytes", "prefix", "load")
	if Equal(a, c) {
		t.Fatal("column order should matter")
	}
	// int64 vs float64 with same magnitude is equal.
	x := New("v")
	x.AppendRow(3)
	y := New("v")
	y.AppendRow(3.0)
	if !Equal(x, y) {
		t.Fatal("3 vs 3.0 should be equal")
	}
	z := New("v")
	z.AppendRow("3")
	if Equal(x, z) {
		t.Fatal("number vs string should differ")
	}
}

func TestCompareValuesOrdering(t *testing.T) {
	ordered := []any{nil, false, true, int64(-1), float64(0.5), int64(2), "a", "b"}
	for i := 0; i < len(ordered)-1; i++ {
		if CompareValues(ordered[i], ordered[i+1]) >= 0 {
			t.Fatalf("ordering violated between %v and %v", ordered[i], ordered[i+1])
		}
	}
	if CompareValues(int64(3), float64(3)) != 0 {
		t.Fatal("cross-type numeric equality")
	}
}

func TestStringRendering(t *testing.T) {
	f := sample()
	s := f.String()
	if s == "" {
		t.Fatal("empty render")
	}
	big := New("i")
	for i := 0; i < 30; i++ {
		big.AppendRow(i)
	}
	if got := big.String(); got == "" {
		t.Fatal("empty render for big frame")
	}
}

// --- property-based tests ---

func randFrame(r *rand.Rand, nrows int) *Frame {
	f := New("id", "grp", "val")
	for i := 0; i < nrows; i++ {
		f.AppendRow(fmt.Sprintf("r%03d", i), fmt.Sprintf("g%d", r.Intn(4)), r.Intn(1000))
	}
	return f
}

func TestPropFilterComplement(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		fr := randFrame(r, 1+r.Intn(50))
		cut := int64(r.Intn(1000))
		lo, err1 := fr.Filter(func(row map[string]any) (bool, error) { return row["val"].(int64) < cut, nil })
		hi, err2 := fr.Filter(func(row map[string]any) (bool, error) { return row["val"].(int64) >= cut, nil })
		if err1 != nil || err2 != nil {
			return false
		}
		return lo.NumRows()+hi.NumRows() == fr.NumRows()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropSortIsPermutationAndOrdered(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		fr := randFrame(r, 1+r.Intn(50))
		s, err := fr.SortBy(true, "val")
		if err != nil || s.NumRows() != fr.NumRows() {
			return false
		}
		col, _ := s.Column("val")
		for i := 1; i < len(col); i++ {
			if CompareValues(col[i-1], col[i]) > 0 {
				return false
			}
		}
		// Same multiset of ids.
		want := map[string]int{}
		got := map[string]int{}
		origIDs, _ := fr.Column("id")
		sortIDs, _ := s.Column("id")
		for i := range origIDs {
			want[origIDs[i].(string)]++
			got[sortIDs[i].(string)]++
		}
		return reflect.DeepEqual(want, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropGroupSumsEqualTotal(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		fr := randFrame(r, 1+r.Intn(60))
		g, err := fr.GroupBy("grp")
		if err != nil {
			return false
		}
		agg, err := g.Agg(AggSpec{Col: "val", Func: AggSum}, AggSpec{Func: AggCount})
		if err != nil {
			return false
		}
		sumOfSums := 0.0
		countTotal := int64(0)
		for i := 0; i < agg.NumRows(); i++ {
			row := agg.Row(i)
			sumOfSums += asFloat(row["val_sum"])
			countTotal += row["count"].(int64)
		}
		total, _ := fr.Sum("val")
		return sumOfSums == asFloat(total) && countTotal == int64(fr.NumRows())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropCloneEqual(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		fr := randFrame(r, r.Intn(40))
		return Equal(fr, fr.Clone())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropInnerJoinSubsetOfLeftKeys(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		left := randFrame(r, 1+r.Intn(30))
		right := New("grp", "extra")
		for i := 0; i < r.Intn(4); i++ {
			right.AppendRow(fmt.Sprintf("g%d", i), i)
		}
		j, err := Merge(left, right, "grp", "grp", InnerJoin)
		if err != nil {
			return false
		}
		rightKeys := map[string]bool{}
		col, _ := right.Column("grp")
		for _, v := range col {
			rightKeys[v.(string)] = true
		}
		jcol, _ := j.Column("grp")
		for _, v := range jcol {
			if !rightKeys[v.(string)] {
				return false
			}
		}
		return j.NumRows() <= left.NumRows()*maxInt(1, right.NumRows())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestPropLeftJoinPreservesLeftRows(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		left := randFrame(r, 1+r.Intn(30))
		right := New("grp", "extra") // unique keys → row count preserved
		for i := 0; i < 4; i++ {
			if r.Intn(2) == 0 {
				right.AppendRow(fmt.Sprintf("g%d", i), i)
			}
		}
		j, err := Merge(left, right, "grp", "grp", LeftJoin)
		if err != nil {
			return false
		}
		return j.NumRows() == left.NumRows()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

package dataframe

import "fmt"

// JoinKind selects the join semantics for Merge.
type JoinKind string

// Supported join kinds.
const (
	InnerJoin JoinKind = "inner"
	LeftJoin  JoinKind = "left"
)

// Merge joins two frames on equality of left[leftKey] and right[rightKey],
// in the manner of pandas merge. Columns from the right frame that collide
// with left column names are suffixed with "_right". Left join emits nil for
// unmatched right columns.
func Merge(left, right *Frame, leftKey, rightKey string, kind JoinKind) (*Frame, error) {
	if !left.HasColumn(leftKey) {
		return nil, fmt.Errorf("dataframe: left key %q does not exist (have %v)", leftKey, left.cols)
	}
	if !right.HasColumn(rightKey) {
		return nil, fmt.Errorf("dataframe: right key %q does not exist (have %v)", rightKey, right.cols)
	}
	if kind != InnerJoin && kind != LeftJoin {
		return nil, fmt.Errorf("dataframe: unsupported join kind %q", kind)
	}

	// Output schema: all left columns, then right columns except rightKey,
	// renaming collisions.
	outCols := append([]string(nil), left.cols...)
	rightOut := make([]string, 0, len(right.cols))
	rightSrc := make([]string, 0, len(right.cols))
	taken := map[string]bool{}
	for _, c := range outCols {
		taken[c] = true
	}
	for _, c := range right.cols {
		if c == rightKey {
			continue
		}
		name := c
		if taken[name] {
			name = c + "_right"
		}
		taken[name] = true
		rightOut = append(rightOut, name)
		rightSrc = append(rightSrc, c)
	}
	outCols = append(outCols, rightOut...)
	out := New(outCols...)

	// Hash the right side.
	index := map[string][]int{}
	rk := right.data[rightKey]
	for i := 0; i < right.nrows; i++ {
		k := keyString(rk[i])
		index[k] = append(index[k], i)
	}

	lk := left.data[leftKey]
	for i := 0; i < left.nrows; i++ {
		matches := index[keyString(lk[i])]
		if len(matches) == 0 {
			if kind == LeftJoin {
				vals := make([]any, 0, len(outCols))
				for _, c := range left.cols {
					vals = append(vals, left.data[c][i])
				}
				for range rightSrc {
					vals = append(vals, nil)
				}
				out.AppendRow(vals...)
			}
			continue
		}
		for _, j := range matches {
			vals := make([]any, 0, len(outCols))
			for _, c := range left.cols {
				vals = append(vals, left.data[c][i])
			}
			for _, c := range rightSrc {
				vals = append(vals, right.data[c][j])
			}
			out.AppendRow(vals...)
		}
	}
	return out, nil
}

// Concat appends the rows of b to a. Both frames must share the same column
// set (order-insensitive; the result uses a's order).
func Concat(a, b *Frame) (*Frame, error) {
	if len(a.cols) != len(b.cols) {
		return nil, fmt.Errorf("dataframe: concat schema mismatch: %v vs %v", a.cols, b.cols)
	}
	for _, c := range a.cols {
		if !b.HasColumn(c) {
			return nil, fmt.Errorf("dataframe: concat schema mismatch: %v vs %v", a.cols, b.cols)
		}
	}
	out := a.Clone()
	for i := 0; i < b.nrows; i++ {
		vals := make([]any, len(a.cols))
		for j, c := range a.cols {
			vals[j] = b.data[c][i]
		}
		out.AppendRow(vals...)
	}
	return out, nil
}

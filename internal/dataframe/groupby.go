package dataframe

import (
	"fmt"
	"math"
	"strings"
)

// AggFunc names an aggregation for GroupBy.Agg and the column statistics
// helpers.
type AggFunc string

// Supported aggregation functions.
const (
	AggSum   AggFunc = "sum"
	AggMean  AggFunc = "mean"
	AggMin   AggFunc = "min"
	AggMax   AggFunc = "max"
	AggCount AggFunc = "count"
	AggFirst AggFunc = "first"
	AggLast  AggFunc = "last"
)

// Grouped is the result of Frame.GroupBy: an ordered set of groups keyed by
// the grouping columns' values.
type Grouped struct {
	src      *Frame
	keys     []string
	order    []string         // canonical key strings in first-appearance order
	groups   map[string][]int // key string -> row indices
	keyCells map[string][]any // key string -> key values
}

// GroupBy groups rows by the given key columns (first-appearance order).
func (f *Frame) GroupBy(keys ...string) (*Grouped, error) {
	for _, k := range keys {
		if !f.HasColumn(k) {
			return nil, fmt.Errorf("dataframe: column %q does not exist (have %v)", k, f.cols)
		}
	}
	g := &Grouped{
		src:      f,
		keys:     append([]string(nil), keys...),
		groups:   map[string][]int{},
		keyCells: map[string][]any{},
	}
	for i := 0; i < f.nrows; i++ {
		parts := make([]string, len(keys))
		cells := make([]any, len(keys))
		for j, k := range keys {
			cells[j] = f.data[k][i]
			parts[j] = keyString(cells[j])
		}
		ks := strings.Join(parts, "\x1f")
		if _, ok := g.groups[ks]; !ok {
			g.order = append(g.order, ks)
			g.keyCells[ks] = cells
		}
		g.groups[ks] = append(g.groups[ks], i)
	}
	return g, nil
}

// NumGroups returns the number of distinct groups.
func (g *Grouped) NumGroups() int { return len(g.order) }

// Agg computes one aggregate per group for each (column, func) pair. The
// result frame has the key columns first, then one column per aggregation
// named "<col>_<func>" (or "count" for AggCount with empty column).
func (g *Grouped) Agg(specs ...AggSpec) (*Frame, error) {
	outCols := append([]string(nil), g.keys...)
	names := make([]string, len(specs))
	for i, s := range specs {
		name := s.Name
		if name == "" {
			if s.Func == AggCount && s.Col == "" {
				name = "count"
			} else {
				name = s.Col + "_" + string(s.Func)
			}
		}
		names[i] = name
		outCols = append(outCols, name)
		if s.Col != "" && !g.src.HasColumn(s.Col) {
			return nil, fmt.Errorf("dataframe: column %q does not exist (have %v)", s.Col, g.src.cols)
		}
	}
	out := New(outCols...)
	for _, ks := range g.order {
		rows := g.groups[ks]
		vals := append([]any(nil), g.keyCells[ks]...)
		for _, s := range specs {
			v, err := aggregate(g.src, rows, s)
			if err != nil {
				return nil, err
			}
			vals = append(vals, v)
		}
		out.AppendRow(vals...)
	}
	return out, nil
}

// AggSpec describes one aggregation: apply Func over Col within each group,
// writing to output column Name (defaulted when empty).
type AggSpec struct {
	Col  string
	Func AggFunc
	Name string
}

func aggregate(f *Frame, rows []int, s AggSpec) (any, error) {
	if s.Func == AggCount {
		return int64(len(rows)), nil
	}
	col, err := f.Column(s.Col)
	if err != nil {
		return nil, err
	}
	switch s.Func {
	case AggFirst:
		if len(rows) == 0 {
			return nil, nil
		}
		return col[rows[0]], nil
	case AggLast:
		if len(rows) == 0 {
			return nil, nil
		}
		return col[rows[len(rows)-1]], nil
	case AggSum, AggMean:
		total := 0.0
		isInt := true
		n := 0
		for _, i := range rows {
			switch x := col[i].(type) {
			case int64:
				total += float64(x)
				n++
			case float64:
				total += x
				isInt = false
				n++
			case nil:
				// pandas skips NaN/None
			default:
				return nil, fmt.Errorf("dataframe: cannot %s non-numeric value %v in column %q", s.Func, x, s.Col)
			}
		}
		if s.Func == AggMean {
			if n == 0 {
				return nil, nil
			}
			return total / float64(n), nil
		}
		if isInt && total == math.Trunc(total) {
			return int64(total), nil
		}
		return total, nil
	case AggMin, AggMax:
		var best any
		for _, i := range rows {
			v := col[i]
			if v == nil {
				continue
			}
			if best == nil {
				best = v
				continue
			}
			cmp := CompareValues(v, best)
			if (s.Func == AggMin && cmp < 0) || (s.Func == AggMax && cmp > 0) {
				best = v
			}
		}
		return best, nil
	default:
		return nil, fmt.Errorf("dataframe: unknown aggregation %q", s.Func)
	}
}

// Sum computes the sum of a numeric column over the whole frame.
func (f *Frame) Sum(col string) (any, error) {
	return aggregate(f, allRows(f), AggSpec{Col: col, Func: AggSum})
}

// Mean computes the arithmetic mean of a numeric column (nil when empty).
func (f *Frame) Mean(col string) (any, error) {
	return aggregate(f, allRows(f), AggSpec{Col: col, Func: AggMean})
}

// Min returns the minimum value of a column (nil when empty).
func (f *Frame) Min(col string) (any, error) {
	return aggregate(f, allRows(f), AggSpec{Col: col, Func: AggMin})
}

// Max returns the maximum value of a column (nil when empty).
func (f *Frame) Max(col string) (any, error) {
	return aggregate(f, allRows(f), AggSpec{Col: col, Func: AggMax})
}

func allRows(f *Frame) []int {
	rows := make([]int, f.nrows)
	for i := range rows {
		rows[i] = i
	}
	return rows
}

// ValueCounts returns a two-column frame (value, count) for one column,
// sorted by descending count then ascending value — pandas value_counts.
func (f *Frame) ValueCounts(col string) (*Frame, error) {
	g, err := f.GroupBy(col)
	if err != nil {
		return nil, err
	}
	counts, err := g.Agg(AggSpec{Func: AggCount})
	if err != nil {
		return nil, err
	}
	// Sort by count desc, then value asc. SortBy applies one direction to
	// all keys, so do it manually here.
	idx := allRows(counts)
	valCol := counts.data[col]
	cntCol := counts.data["count"]
	sortStableBy(idx, func(a, b int) bool {
		if c := CompareValues(cntCol[a], cntCol[b]); c != 0 {
			return c > 0
		}
		return CompareValues(valCol[a], valCol[b]) < 0
	})
	return counts.take(idx), nil
}

func sortStableBy(idx []int, less func(a, b int) bool) {
	// insertion sort keeps it dependency-free and stable; group counts are
	// small in practice.
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && less(idx[j], idx[j-1]); j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
}

// Package dataframe implements a small columnar dataframe in the spirit of
// pandas. It is the tabular execution substrate for LLM-generated programs:
// the traffic-analysis and MALT applications expose their node and edge
// tables as frames, and generated code filters, sorts, groups, aggregates
// and joins them.
//
// Values are normalized to nil, bool, int64, float64 or string. Column order
// is preserved; row order is the frame's observable order.
package dataframe

import (
	"fmt"
	"sort"
	"strings"
)

// Frame is an immutable-by-convention columnar table. Operations return new
// frames; mutating helpers (SetCell, AppendRow) exist for building.
//
// A frame can be frozen into a master (Freeze), after which Clone shares
// its column storage copy-on-write: the clone copies columns only when
// first mutated. This mirrors graph.Freeze/Clone and is what lets the
// evaluation matrix hand every sandboxed trial its own table state without
// re-copying thousands of rows per cell.
type Frame struct {
	cols   []string
	data   map[string][]any
	nrows  int
	frozen bool // immutable master; mutating it is a programming error
	shared bool // columns are shared with a frozen master; copy before write
}

// New creates an empty frame with the given column names.
func New(cols ...string) *Frame {
	f := &Frame{cols: append([]string(nil), cols...), data: map[string][]any{}}
	for _, c := range cols {
		if _, dup := f.data[c]; dup {
			panic(fmt.Sprintf("dataframe: duplicate column %q", c))
		}
		f.data[c] = nil
	}
	return f
}

// FromRecords builds a frame from row maps using the provided column order.
// Missing keys become nil; extra keys are ignored.
func FromRecords(cols []string, records []map[string]any) *Frame {
	f := New(cols...)
	for _, r := range records {
		row := make([]any, len(cols))
		for i, c := range cols {
			row[i] = r[c]
		}
		f.AppendRow(row...)
	}
	return f
}

// normalize coerces values into the frame's value domain.
func normalize(v any) any {
	switch x := v.(type) {
	case nil, bool, int64, float64, string:
		return x
	case int:
		return int64(x)
	case int8:
		return int64(x)
	case int16:
		return int64(x)
	case int32:
		return int64(x)
	case uint:
		return int64(x)
	case uint8:
		return int64(x)
	case uint16:
		return int64(x)
	case uint32:
		return int64(x)
	case uint64:
		return int64(x)
	case float32:
		return float64(x)
	default:
		return fmt.Sprintf("%v", x)
	}
}

// Columns returns the column names in order (copy).
func (f *Frame) Columns() []string { return append([]string(nil), f.cols...) }

// NumRows returns the row count.
func (f *Frame) NumRows() int { return f.nrows }

// NumCols returns the column count.
func (f *Frame) NumCols() int { return len(f.cols) }

// HasColumn reports whether the column exists.
func (f *Frame) HasColumn(name string) bool {
	_, ok := f.data[name]
	return ok
}

// Column returns the values of one column (live slice — treat as read-only).
// It errors on unknown columns, surfacing the "imaginary attribute" failure
// class of generated code.
func (f *Frame) Column(name string) ([]any, error) {
	col, ok := f.data[name]
	if !ok {
		return nil, fmt.Errorf("dataframe: column %q does not exist (have %v)", name, f.cols)
	}
	return col, nil
}

// Cell returns the value at (row, col).
func (f *Frame) Cell(row int, col string) (any, error) {
	c, err := f.Column(col)
	if err != nil {
		return nil, err
	}
	if row < 0 || row >= f.nrows {
		return nil, fmt.Errorf("dataframe: row %d out of range [0,%d)", row, f.nrows)
	}
	return c[row], nil
}

// SetCell assigns the value at (row, col) in place.
func (f *Frame) SetCell(row int, col string, v any) error {
	if _, err := f.Column(col); err != nil {
		return err
	}
	if row < 0 || row >= f.nrows {
		return fmt.Errorf("dataframe: row %d out of range [0,%d)", row, f.nrows)
	}
	f.ensureOwned()
	f.data[col][row] = normalize(v)
	return nil
}

// AppendRow appends one row; the argument count must match the column count.
func (f *Frame) AppendRow(vals ...any) {
	if len(vals) != len(f.cols) {
		panic(fmt.Sprintf("dataframe: AppendRow got %d values for %d columns", len(vals), len(f.cols)))
	}
	f.ensureOwned()
	for i, c := range f.cols {
		f.data[c] = append(f.data[c], normalize(vals[i]))
	}
	f.nrows++
}

// Row returns row i as a map keyed by column name.
func (f *Frame) Row(i int) map[string]any {
	out := make(map[string]any, len(f.cols))
	for _, c := range f.cols {
		out[c] = f.data[c][i]
	}
	return out
}

// Records returns all rows as maps (row order preserved).
func (f *Frame) Records() []map[string]any {
	out := make([]map[string]any, f.nrows)
	for i := 0; i < f.nrows; i++ {
		out[i] = f.Row(i)
	}
	return out
}

// Select returns a new frame containing only the named columns, in the given
// order.
func (f *Frame) Select(cols ...string) (*Frame, error) {
	out := New(cols...)
	for _, c := range cols {
		src, err := f.Column(c)
		if err != nil {
			return nil, err
		}
		out.data[c] = append([]any(nil), src...)
	}
	out.nrows = f.nrows
	return out, nil
}

// Drop returns a new frame without the named columns.
func (f *Frame) Drop(cols ...string) (*Frame, error) {
	dropped := map[string]bool{}
	for _, c := range cols {
		if !f.HasColumn(c) {
			return nil, fmt.Errorf("dataframe: column %q does not exist", c)
		}
		dropped[c] = true
	}
	var keep []string
	for _, c := range f.cols {
		if !dropped[c] {
			keep = append(keep, c)
		}
	}
	return f.Select(keep...)
}

// Rename returns a new frame with column old renamed to new.
func (f *Frame) Rename(oldName, newName string) (*Frame, error) {
	if !f.HasColumn(oldName) {
		return nil, fmt.Errorf("dataframe: column %q does not exist", oldName)
	}
	if f.HasColumn(newName) && newName != oldName {
		return nil, fmt.Errorf("dataframe: column %q already exists", newName)
	}
	out := f.Clone()
	for i, c := range out.cols {
		if c == oldName {
			out.cols[i] = newName
		}
	}
	out.data[newName] = out.data[oldName]
	if newName != oldName {
		delete(out.data, oldName)
	}
	return out, nil
}

// Freeze marks the frame as an immutable master: subsequent Clones share
// its column storage copy-on-write instead of deep-copying. Mutating a
// frozen frame panics.
func (f *Frame) Freeze() { f.frozen = true }

// Clone returns a copy of the frame. Cloning a frozen master is O(columns):
// the clone shares the master's column slices and copies them only when it
// is first mutated. Cloning an unfrozen frame deep-copies as before.
func (f *Frame) Clone() *Frame {
	out := New(f.cols...)
	if f.frozen {
		for _, c := range f.cols {
			out.data[c] = f.data[c]
		}
		out.nrows = f.nrows
		out.shared = true
		return out
	}
	for _, c := range f.cols {
		out.data[c] = append([]any(nil), f.data[c]...)
	}
	out.nrows = f.nrows
	return out
}

// ensureOwned makes the frame's column storage private before an in-place
// mutation (SetCell, AppendRow).
func (f *Frame) ensureOwned() {
	if f.frozen {
		panic("dataframe: mutating a frozen frame")
	}
	if !f.shared {
		return
	}
	for c, col := range f.data {
		f.data[c] = append([]any(nil), col...)
	}
	f.shared = false
}

// Filter returns the rows for which pred returns true.
func (f *Frame) Filter(pred func(row map[string]any) (bool, error)) (*Frame, error) {
	out := New(f.cols...)
	for i := 0; i < f.nrows; i++ {
		row := f.Row(i)
		keep, err := pred(row)
		if err != nil {
			return nil, err
		}
		if keep {
			vals := make([]any, len(f.cols))
			for j, c := range f.cols {
				vals[j] = f.data[c][i]
			}
			out.AppendRow(vals...)
		}
	}
	return out, nil
}

// FilterIdx returns the rows for which pred(i) is true. Unlike Filter it
// never materializes row maps — predicates read columns directly, which is
// what the NQL bindings do on the evaluation matrix's hot path. Kept rows
// are copied at visit time, exactly like Filter, so a predicate that
// mutates the frame observes the same semantics either way.
func (f *Frame) FilterIdx(pred func(i int) (bool, error)) (*Frame, error) {
	out := New(f.cols...)
	vals := make([]any, len(f.cols))
	for i := 0; i < f.nrows; i++ {
		keep, err := pred(i)
		if err != nil {
			return nil, err
		}
		if keep {
			for j, c := range f.cols {
				vals[j] = f.data[c][i]
			}
			out.AppendRow(vals...)
		}
	}
	return out, nil
}

// FilterEq returns the rows where column == value (normalized comparison).
func (f *Frame) FilterEq(col string, value any) (*Frame, error) {
	if !f.HasColumn(col) {
		return nil, fmt.Errorf("dataframe: column %q does not exist", col)
	}
	want := normalize(value)
	return f.Filter(func(row map[string]any) (bool, error) {
		return CompareValues(row[col], want) == 0 && typedSameKind(row[col], want), nil
	})
}

// Head returns the first n rows (all rows if n exceeds the count).
func (f *Frame) Head(n int) *Frame {
	if n > f.nrows {
		n = f.nrows
	}
	if n < 0 {
		n = 0
	}
	out := New(f.cols...)
	for _, c := range f.cols {
		out.data[c] = append([]any(nil), f.data[c][:n]...)
	}
	out.nrows = n
	return out
}

// SortBy returns a new frame sorted by the given columns; ascending controls
// the direction of every key (pandas-style single flag). The sort is stable.
func (f *Frame) SortBy(ascending bool, cols ...string) (*Frame, error) {
	for _, c := range cols {
		if !f.HasColumn(c) {
			return nil, fmt.Errorf("dataframe: column %q does not exist", c)
		}
	}
	idx := make([]int, f.nrows)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		for _, c := range cols {
			cmp := CompareValues(f.data[c][idx[a]], f.data[c][idx[b]])
			if cmp != 0 {
				if ascending {
					return cmp < 0
				}
				return cmp > 0
			}
		}
		return false
	})
	return f.take(idx), nil
}

func (f *Frame) take(idx []int) *Frame {
	out := New(f.cols...)
	for _, c := range f.cols {
		col := make([]any, len(idx))
		for i, j := range idx {
			col[i] = f.data[c][j]
		}
		out.data[c] = col
	}
	out.nrows = len(idx)
	return out
}

// Mutate returns a new frame with an added (or replaced) column computed per
// row.
func (f *Frame) Mutate(col string, fn func(row map[string]any) (any, error)) (*Frame, error) {
	out := f.Clone()
	vals := make([]any, f.nrows)
	for i := 0; i < f.nrows; i++ {
		v, err := fn(f.Row(i))
		if err != nil {
			return nil, err
		}
		vals[i] = normalize(v)
	}
	if !out.HasColumn(col) {
		out.cols = append(out.cols, col)
	}
	out.data[col] = vals
	return out, nil
}

// MutateIdx is Mutate with an index-based callback (no row-map building).
func (f *Frame) MutateIdx(col string, fn func(i int) (any, error)) (*Frame, error) {
	out := f.Clone()
	vals := make([]any, f.nrows)
	for i := 0; i < f.nrows; i++ {
		v, err := fn(i)
		if err != nil {
			return nil, err
		}
		vals[i] = normalize(v)
	}
	if !out.HasColumn(col) {
		out.cols = append(out.cols, col)
	}
	out.data[col] = vals
	return out, nil
}

// Unique returns the distinct values of a column in first-appearance order.
func (f *Frame) Unique(col string) ([]any, error) {
	c, err := f.Column(col)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var out []any
	for _, v := range c {
		k := keyString(v)
		if !seen[k] {
			seen[k] = true
			out = append(out, v)
		}
	}
	return out, nil
}

// CompareValues orders two normalized values: nil < bool < number < string,
// numbers compare across int64/float64.
func CompareValues(a, b any) int {
	ra, rb := rank(a), rank(b)
	if ra != rb {
		return ra - rb
	}
	switch x := a.(type) {
	case nil:
		return 0
	case bool:
		y := b.(bool)
		switch {
		case x == y:
			return 0
		case !x:
			return -1
		default:
			return 1
		}
	case int64:
		return cmpFloat(float64(x), asFloat(b))
	case float64:
		return cmpFloat(x, asFloat(b))
	case string:
		return strings.Compare(x, b.(string))
	default:
		return strings.Compare(fmt.Sprintf("%v", a), fmt.Sprintf("%v", b))
	}
}

func rank(v any) int {
	switch v.(type) {
	case nil:
		return 0
	case bool:
		return 1
	case int64, float64:
		return 2
	case string:
		return 3
	default:
		return 4
	}
}

func asFloat(v any) float64 {
	switch x := v.(type) {
	case int64:
		return float64(x)
	case float64:
		return x
	default:
		return 0
	}
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func typedSameKind(a, b any) bool { return rank(a) == rank(b) }

func keyString(v any) string {
	switch x := v.(type) {
	case nil:
		return "\x00nil"
	case bool:
		return fmt.Sprintf("\x01%v", x)
	case int64:
		return fmt.Sprintf("\x02%v", float64(x))
	case float64:
		return fmt.Sprintf("\x02%v", x)
	case string:
		return "\x03" + x
	default:
		return "\x04" + fmt.Sprintf("%v", x)
	}
}

// Equal reports deep equality of two frames: same columns (order-sensitive),
// same rows in the same order, numeric values compared across int/float.
func Equal(a, b *Frame) bool {
	if a.nrows != b.nrows || len(a.cols) != len(b.cols) {
		return false
	}
	for i, c := range a.cols {
		if b.cols[i] != c {
			return false
		}
	}
	for _, c := range a.cols {
		ac, bc := a.data[c], b.data[c]
		for i := 0; i < a.nrows; i++ {
			if CompareValues(ac[i], bc[i]) != 0 || rank(ac[i]) != rank(bc[i]) {
				// Allow int64 vs float64 equality despite rank check above
				// (both rank 2); rank catches string vs number mismatches.
				if rank(ac[i]) != rank(bc[i]) || CompareValues(ac[i], bc[i]) != 0 {
					return false
				}
			}
		}
	}
	return true
}

// String renders the frame as an aligned text table (up to 20 rows).
func (f *Frame) String() string {
	var sb strings.Builder
	sb.WriteString(strings.Join(f.cols, "\t"))
	sb.WriteString("\n")
	limit := f.nrows
	if limit > 20 {
		limit = 20
	}
	for i := 0; i < limit; i++ {
		parts := make([]string, len(f.cols))
		for j, c := range f.cols {
			parts[j] = fmt.Sprintf("%v", f.data[c][i])
		}
		sb.WriteString(strings.Join(parts, "\t"))
		sb.WriteString("\n")
	}
	if f.nrows > limit {
		fmt.Fprintf(&sb, "... (%d rows total)\n", f.nrows)
	}
	return sb.String()
}

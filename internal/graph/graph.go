// Package graph implements an attributed multigraph library in the spirit of
// NetworkX. It is the primary execution substrate for LLM-generated network
// management programs: nodes and edges carry free-form attribute maps, the
// graph may be directed or undirected, and iteration order is deterministic
// (insertion order) so that benchmark runs are reproducible.
package graph

import (
	"fmt"
	"sort"
)

// Attrs is a free-form attribute map attached to nodes, edges and the graph
// itself. Values should be one of: nil, bool, int64, float64, string,
// []any, or map[string]any so that equality and JSON round-trips are
// well-defined. The convenience setters normalize Go ints to int64.
type Attrs map[string]any

// Clone returns a shallow copy of the attribute map (nested values are
// shared; callers that mutate nested values should copy them explicitly).
func (a Attrs) Clone() Attrs {
	if a == nil {
		return nil
	}
	out := make(Attrs, len(a))
	for k, v := range a {
		out[k] = v
	}
	return out
}

// Normalize converts int-kind values to int64 and float32 to float64 so
// attribute comparisons behave uniformly regardless of the caller's types.
func Normalize(v any) any {
	switch x := v.(type) {
	case int:
		return int64(x)
	case int8:
		return int64(x)
	case int16:
		return int64(x)
	case int32:
		return int64(x)
	case uint:
		return int64(x)
	case uint8:
		return int64(x)
	case uint16:
		return int64(x)
	case uint32:
		return int64(x)
	case uint64:
		return int64(x)
	case float32:
		return float64(x)
	default:
		return v
	}
}

// EdgeKey identifies an edge by its endpoints. In an undirected graph the
// canonical key orders the endpoints lexicographically.
type EdgeKey struct {
	U, V string
}

// Edge is a materialized view of one edge and its attributes.
type Edge struct {
	U, V  string
	Attrs Attrs
}

// Graph is an attributed simple graph (at most one edge per ordered node
// pair; an undirected graph stores each edge once under its canonical key).
// The zero value is not usable; construct with New or NewDirected.
type Graph struct {
	directed bool
	attrs    Attrs

	nodeOrder []string
	nodes     map[string]Attrs

	edgeOrder []EdgeKey
	edges     map[EdgeKey]Attrs

	succ map[string]map[string]struct{} // out-neighbors (or neighbors if undirected)
	pred map[string]map[string]struct{} // in-neighbors (mirror of succ if undirected)
}

// New returns an empty undirected graph.
func New() *Graph { return newGraph(false) }

// NewDirected returns an empty directed graph.
func NewDirected() *Graph { return newGraph(true) }

func newGraph(directed bool) *Graph {
	return &Graph{
		directed: directed,
		attrs:    Attrs{},
		nodes:    map[string]Attrs{},
		edges:    map[EdgeKey]Attrs{},
		succ:     map[string]map[string]struct{}{},
		pred:     map[string]map[string]struct{}{},
	}
}

// Directed reports whether the graph is directed.
func (g *Graph) Directed() bool { return g.directed }

// GraphAttrs returns the graph-level attribute map (mutable).
func (g *Graph) GraphAttrs() Attrs { return g.attrs }

func (g *Graph) key(u, v string) EdgeKey {
	if !g.directed && u > v {
		u, v = v, u
	}
	return EdgeKey{U: u, V: v}
}

// AddNode inserts a node if absent and merges attrs into its attribute map.
func (g *Graph) AddNode(id string, attrs Attrs) {
	cur, ok := g.nodes[id]
	if !ok {
		cur = Attrs{}
		g.nodes[id] = cur
		g.nodeOrder = append(g.nodeOrder, id)
		g.succ[id] = map[string]struct{}{}
		g.pred[id] = map[string]struct{}{}
	}
	for k, v := range attrs {
		cur[k] = Normalize(v)
	}
}

// HasNode reports whether id exists in the graph.
func (g *Graph) HasNode(id string) bool {
	_, ok := g.nodes[id]
	return ok
}

// NodeAttrs returns the attribute map for id, or nil if id is absent. The
// returned map is live: mutations are visible in the graph.
func (g *Graph) NodeAttrs(id string) Attrs { return g.nodes[id] }

// SetNodeAttr sets one attribute on an existing node. It returns an error if
// the node does not exist — mirroring the "imaginary attribute/node" failure
// mode the benchmark must surface.
func (g *Graph) SetNodeAttr(id, key string, value any) error {
	a, ok := g.nodes[id]
	if !ok {
		return fmt.Errorf("graph: node %q does not exist", id)
	}
	a[key] = Normalize(value)
	return nil
}

// RemoveNode deletes a node and every incident edge. Removing an absent node
// is an error (NetworkX raises too).
func (g *Graph) RemoveNode(id string) error {
	if !g.HasNode(id) {
		return fmt.Errorf("graph: node %q does not exist", id)
	}
	// Collect incident edges first to avoid mutating while iterating.
	var doomed []EdgeKey
	for k := range g.edges {
		if k.U == id || k.V == id {
			doomed = append(doomed, k)
		}
	}
	for _, k := range doomed {
		g.removeEdgeKey(k)
	}
	delete(g.nodes, id)
	delete(g.succ, id)
	delete(g.pred, id)
	for i, n := range g.nodeOrder {
		if n == id {
			g.nodeOrder = append(g.nodeOrder[:i], g.nodeOrder[i+1:]...)
			break
		}
	}
	return nil
}

// AddEdge inserts an edge (creating endpoints if necessary) and merges attrs.
func (g *Graph) AddEdge(u, v string, attrs Attrs) {
	g.AddNode(u, nil)
	g.AddNode(v, nil)
	k := g.key(u, v)
	cur, ok := g.edges[k]
	if !ok {
		cur = Attrs{}
		g.edges[k] = cur
		g.edgeOrder = append(g.edgeOrder, k)
	}
	for a, val := range attrs {
		cur[a] = Normalize(val)
	}
	g.succ[u][v] = struct{}{}
	g.pred[v][u] = struct{}{}
	if !g.directed {
		g.succ[v][u] = struct{}{}
		g.pred[u][v] = struct{}{}
	}
}

// HasEdge reports whether the edge u->v (or u—v when undirected) exists.
func (g *Graph) HasEdge(u, v string) bool {
	_, ok := g.edges[g.key(u, v)]
	return ok
}

// EdgeAttrs returns the live attribute map of edge u,v or nil if absent.
func (g *Graph) EdgeAttrs(u, v string) Attrs { return g.edges[g.key(u, v)] }

// SetEdgeAttr sets one attribute on an existing edge.
func (g *Graph) SetEdgeAttr(u, v, key string, value any) error {
	a, ok := g.edges[g.key(u, v)]
	if !ok {
		return fmt.Errorf("graph: edge (%q,%q) does not exist", u, v)
	}
	a[key] = Normalize(value)
	return nil
}

// RemoveEdge deletes the edge u,v. Removing an absent edge is an error.
func (g *Graph) RemoveEdge(u, v string) error {
	k := g.key(u, v)
	if _, ok := g.edges[k]; !ok {
		return fmt.Errorf("graph: edge (%q,%q) does not exist", u, v)
	}
	g.removeEdgeKey(k)
	return nil
}

func (g *Graph) removeEdgeKey(k EdgeKey) {
	delete(g.edges, k)
	for i, e := range g.edgeOrder {
		if e == k {
			g.edgeOrder = append(g.edgeOrder[:i], g.edgeOrder[i+1:]...)
			break
		}
	}
	delete(g.succ[k.U], k.V)
	delete(g.pred[k.V], k.U)
	if !g.directed {
		delete(g.succ[k.V], k.U)
		delete(g.pred[k.U], k.V)
	}
}

// Nodes returns node IDs in insertion order. The slice is a copy.
func (g *Graph) Nodes() []string {
	out := make([]string, len(g.nodeOrder))
	copy(out, g.nodeOrder)
	return out
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Edges returns materialized edges in insertion order. Attribute maps are
// live references.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, len(g.edgeOrder))
	for _, k := range g.edgeOrder {
		out = append(out, Edge{U: k.U, V: k.V, Attrs: g.edges[k]})
	}
	return out
}

// Neighbors returns the out-neighbors of id (all neighbors when undirected),
// sorted lexicographically for determinism.
func (g *Graph) Neighbors(id string) []string {
	return sortedKeys(g.succ[id])
}

// Predecessors returns the in-neighbors of id (same as Neighbors when
// undirected), sorted.
func (g *Graph) Predecessors(id string) []string {
	return sortedKeys(g.pred[id])
}

func sortedKeys(m map[string]struct{}) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Degree returns the degree of id: total degree for undirected graphs,
// in+out degree for directed graphs.
func (g *Graph) Degree(id string) int {
	if !g.HasNode(id) {
		return 0
	}
	if g.directed {
		return len(g.succ[id]) + len(g.pred[id])
	}
	d := len(g.succ[id])
	if _, self := g.succ[id][id]; self {
		d++ // NetworkX counts self-loops twice in undirected degree.
	}
	return d
}

// InDegree returns the in-degree (undirected graphs: same as Degree).
func (g *Graph) InDegree(id string) int {
	if !g.directed {
		return g.Degree(id)
	}
	return len(g.pred[id])
}

// OutDegree returns the out-degree (undirected graphs: same as Degree).
func (g *Graph) OutDegree(id string) int {
	if !g.directed {
		return g.Degree(id)
	}
	return len(g.succ[id])
}

// Clone returns a deep copy of the graph (attribute maps are copied one
// level deep, matching Attrs.Clone).
func (g *Graph) Clone() *Graph {
	c := newGraph(g.directed)
	c.attrs = g.attrs.Clone()
	if c.attrs == nil {
		c.attrs = Attrs{}
	}
	for _, n := range g.nodeOrder {
		c.AddNode(n, g.nodes[n].Clone())
	}
	for _, k := range g.edgeOrder {
		c.AddEdge(k.U, k.V, g.edges[k].Clone())
	}
	return c
}

// Subgraph returns a new graph induced by keep: it contains every listed
// node present in g and every edge whose endpoints are both kept.
func (g *Graph) Subgraph(keep []string) *Graph {
	in := make(map[string]bool, len(keep))
	for _, n := range keep {
		if g.HasNode(n) {
			in[n] = true
		}
	}
	s := newGraph(g.directed)
	for _, n := range g.nodeOrder {
		if in[n] {
			s.AddNode(n, g.nodes[n].Clone())
		}
	}
	for _, k := range g.edgeOrder {
		if in[k.U] && in[k.V] {
			s.AddEdge(k.U, k.V, g.edges[k].Clone())
		}
	}
	return s
}

// Reverse returns a copy of a directed graph with all edges reversed; for an
// undirected graph it is equivalent to Clone.
func (g *Graph) Reverse() *Graph {
	if !g.directed {
		return g.Clone()
	}
	r := newGraph(true)
	r.attrs = g.attrs.Clone()
	for _, n := range g.nodeOrder {
		r.AddNode(n, g.nodes[n].Clone())
	}
	for _, k := range g.edgeOrder {
		r.AddEdge(k.V, k.U, g.edges[k].Clone())
	}
	return r
}

// String summarizes the graph, e.g. "DiGraph(12 nodes, 30 edges)".
func (g *Graph) String() string {
	kind := "Graph"
	if g.directed {
		kind = "DiGraph"
	}
	return fmt.Sprintf("%s(%d nodes, %d edges)", kind, g.NumNodes(), g.NumEdges())
}

// Package graph implements an attributed multigraph library in the spirit of
// NetworkX. It is the primary execution substrate for LLM-generated network
// management programs: nodes and edges carry free-form attribute maps, the
// graph may be directed or undirected, and iteration order is deterministic
// (insertion order) so that benchmark runs are reproducible.
//
// Internally nodes are stored under dense integer indices (position in
// insertion order) with slice-based adjacency lists, so the traversal and
// centrality algorithms run over int loops instead of nested string maps.
// Attribute maps support copy-on-write sharing: Freeze marks a graph as an
// immutable master, after which Clone is nearly allocation-free and safe to
// call concurrently; any mutation of a clone (or of the master) first
// copies the affected attribute map, so graphs never observe each other's
// writes.
package graph

import (
	"fmt"
	"sort"
)

// Attrs is a free-form attribute map attached to nodes, edges and the graph
// itself. Values should be one of: nil, bool, int64, float64, string,
// []any, or map[string]any so that equality and JSON round-trips are
// well-defined. The convenience setters normalize Go ints to int64.
type Attrs map[string]any

// Clone returns a shallow copy of the attribute map (nested values are
// shared; callers that mutate nested values should copy them explicitly).
func (a Attrs) Clone() Attrs {
	if a == nil {
		return nil
	}
	out := make(Attrs, len(a))
	for k, v := range a {
		out[k] = v
	}
	return out
}

// Normalize converts int-kind values to int64 and float32 to float64 so
// attribute comparisons behave uniformly regardless of the caller's types.
func Normalize(v any) any {
	switch x := v.(type) {
	case int:
		return int64(x)
	case int8:
		return int64(x)
	case int16:
		return int64(x)
	case int32:
		return int64(x)
	case uint:
		return int64(x)
	case uint8:
		return int64(x)
	case uint16:
		return int64(x)
	case uint32:
		return int64(x)
	case uint64:
		return int64(x)
	case float32:
		return float64(x)
	default:
		return v
	}
}

// EdgeKey identifies an edge by its endpoints. In an undirected graph the
// canonical key orders the endpoints lexicographically.
type EdgeKey struct {
	U, V string
}

// Edge is a materialized view of one edge and its attributes.
type Edge struct {
	U, V  string
	Attrs Attrs
}

// Graph is an attributed simple graph (at most one edge per ordered node
// pair; an undirected graph stores each edge once under its canonical key).
// The zero value is not usable; construct with New or NewDirected.
type Graph struct {
	directed bool
	attrs    Attrs

	nodeOrder []string       // insertion order; a node's index is its position here
	nodeIdx   map[string]int // id -> index in nodeOrder
	nodeAttrs []Attrs        // parallel to nodeOrder; entries are never nil

	edgeOrder []EdgeKey
	edges     map[EdgeKey]Attrs

	succ [][]int32 // out-neighbor indices (all neighbors if undirected), insertion order
	pred [][]int32 // in-neighbor indices (mirror of succ if undirected)

	// Copy-on-write bookkeeping. When nodeShared is non-nil, nodeShared[i]
	// reports that nodeAttrs[i] is shared with another graph and must be
	// copied before the first write; edgeShared mirrors this for edges and
	// attrsShared for the graph-level map. Freshly constructed graphs own
	// everything (all three fields nil/false).
	nodeShared  []bool
	edgeShared  map[EdgeKey]bool
	attrsShared bool

	// version counts structural changes (node/edge insertions and
	// removals, not attribute writes), letting bindings cache derived
	// node/edge listings safely.
	version uint64
}

// Version returns a counter that changes whenever the node or edge set
// changes (attribute writes do not affect it). Caches of derived listings
// are valid while the version is unchanged.
func (g *Graph) Version() uint64 { return g.version }

// New returns an empty undirected graph.
func New() *Graph { return newGraph(false) }

// NewDirected returns an empty directed graph.
func NewDirected() *Graph { return newGraph(true) }

func newGraph(directed bool) *Graph {
	return &Graph{
		directed: directed,
		attrs:    Attrs{},
		nodeIdx:  map[string]int{},
		edges:    map[EdgeKey]Attrs{},
	}
}

// Directed reports whether the graph is directed.
func (g *Graph) Directed() bool { return g.directed }

// GraphAttrs returns the graph-level attribute map (mutable).
func (g *Graph) GraphAttrs() Attrs {
	if g.attrsShared {
		g.attrs = g.attrs.Clone()
		if g.attrs == nil {
			g.attrs = Attrs{}
		}
		g.attrsShared = false
	}
	return g.attrs
}

func (g *Graph) key(u, v string) EdgeKey {
	if !g.directed && u > v {
		u, v = v, u
	}
	return EdgeKey{U: u, V: v}
}

// Freeze marks every attribute map in the graph as shared, turning g into
// an immutable master: subsequent Clone calls share the attribute maps
// instead of copying them (and are safe to issue from multiple goroutines),
// while the first write to any map — in g or in any clone — copies it
// first, so no graph ever observes another's mutations. Freeze itself must
// not race with writes to g.
//
// Freeze is incremental: a master extended with further nodes or edges
// (e.g. by applying streamed batches or Merge) can be re-frozen, which
// marks the newly added maps shared too. Existing clones stay valid — the
// maps they share were already marked, and re-marking an exclusively owned
// map only re-enables sharing for future clones.
func (g *Graph) Freeze() {
	g.nodeShared = make([]bool, len(g.nodeOrder))
	for i := range g.nodeShared {
		g.nodeShared[i] = true
	}
	g.edgeShared = make(map[EdgeKey]bool, len(g.edges))
	for k := range g.edges {
		g.edgeShared[k] = true
	}
	g.attrsShared = true
}

// sharesAttrs reports whether any attribute map may be shared.
func (g *Graph) sharesAttrs() bool {
	return g.nodeShared != nil || g.edgeShared != nil || g.attrsShared
}

// ownNode ensures nodeAttrs[i] is exclusively owned before a write.
func (g *Graph) ownNode(i int) {
	if g.nodeShared != nil && g.nodeShared[i] {
		g.nodeAttrs[i] = g.nodeAttrs[i].Clone()
		g.nodeShared[i] = false
	}
}

// ownEdge ensures edges[k] is exclusively owned before a write.
func (g *Graph) ownEdge(k EdgeKey) {
	if g.edgeShared != nil && g.edgeShared[k] {
		g.edges[k] = g.edges[k].Clone()
		g.edgeShared[k] = false
	}
}

// AddNode inserts a node if absent and merges attrs into its attribute map.
func (g *Graph) AddNode(id string, attrs Attrs) {
	i, ok := g.nodeIdx[id]
	if !ok {
		g.version++
		i = len(g.nodeOrder)
		g.nodeIdx[id] = i
		g.nodeOrder = append(g.nodeOrder, id)
		g.nodeAttrs = append(g.nodeAttrs, Attrs{})
		g.succ = append(g.succ, nil)
		g.pred = append(g.pred, nil)
		if g.nodeShared != nil {
			g.nodeShared = append(g.nodeShared, false)
		}
	}
	if len(attrs) == 0 {
		return
	}
	g.ownNode(i)
	cur := g.nodeAttrs[i]
	for k, v := range attrs {
		cur[k] = Normalize(v)
	}
}

// HasNode reports whether id exists in the graph.
func (g *Graph) HasNode(id string) bool {
	_, ok := g.nodeIdx[id]
	return ok
}

// NodeAttrs returns the attribute map for id, or nil if id is absent. The
// returned map is live: mutations are visible in the graph.
func (g *Graph) NodeAttrs(id string) Attrs {
	i, ok := g.nodeIdx[id]
	if !ok {
		return nil
	}
	g.ownNode(i) // the caller may write through the returned map
	return g.nodeAttrs[i]
}

// NodeAttrsView returns the attribute map for id for read-only use, or nil
// if id is absent. Unlike NodeAttrs it does not take ownership of a shared
// (copy-on-write) map, so the caller must not mutate the result; use it
// for read paths that would otherwise force a copy of every map they
// touch.
func (g *Graph) NodeAttrsView(id string) Attrs { return g.nodeViewByID(id) }

// EdgeAttrsView returns the attribute map of edge u,v for read-only use,
// or nil if absent, without taking ownership of a shared map.
func (g *Graph) EdgeAttrsView(u, v string) Attrs { return g.edges[g.key(u, v)] }

// nodeView returns the attribute map for a node index without taking
// ownership. For package-internal read-only paths (equality, rendering,
// serialization) that must not defeat copy-on-write sharing.
func (g *Graph) nodeView(i int) Attrs { return g.nodeAttrs[i] }

// nodeViewByID is nodeView keyed by id; nil when absent.
func (g *Graph) nodeViewByID(id string) Attrs {
	if i, ok := g.nodeIdx[id]; ok {
		return g.nodeAttrs[i]
	}
	return nil
}

// edgeView returns an edge's attribute map without taking ownership.
func (g *Graph) edgeView(k EdgeKey) Attrs { return g.edges[k] }

// SetNodeAttr sets one attribute on an existing node. It returns an error if
// the node does not exist — mirroring the "imaginary attribute/node" failure
// mode the benchmark must surface.
func (g *Graph) SetNodeAttr(id, key string, value any) error {
	i, ok := g.nodeIdx[id]
	if !ok {
		return fmt.Errorf("graph: node %q does not exist", id)
	}
	g.ownNode(i)
	g.nodeAttrs[i][key] = Normalize(value)
	return nil
}

// RemoveNode deletes a node and every incident edge. Removing an absent node
// is an error (NetworkX raises too).
func (g *Graph) RemoveNode(id string) error {
	i, ok := g.nodeIdx[id]
	if !ok {
		return fmt.Errorf("graph: node %q does not exist", id)
	}
	// Collect incident edges first to avoid mutating while iterating.
	var doomed []EdgeKey
	for k := range g.edges {
		if k.U == id || k.V == id {
			doomed = append(doomed, k)
		}
	}
	for _, k := range doomed {
		g.removeEdgeKey(k)
	}
	g.version++
	delete(g.nodeIdx, id)
	g.nodeOrder = append(g.nodeOrder[:i], g.nodeOrder[i+1:]...)
	g.nodeAttrs = append(g.nodeAttrs[:i], g.nodeAttrs[i+1:]...)
	g.succ = append(g.succ[:i], g.succ[i+1:]...)
	g.pred = append(g.pred[:i], g.pred[i+1:]...)
	if g.nodeShared != nil {
		g.nodeShared = append(g.nodeShared[:i], g.nodeShared[i+1:]...)
	}
	// Reindex: nodes after position i shift down by one, and every
	// adjacency entry referencing a higher index must follow.
	for j := i; j < len(g.nodeOrder); j++ {
		g.nodeIdx[g.nodeOrder[j]] = j
	}
	ri := int32(i)
	for n := range g.succ {
		shiftIndices(g.succ[n], ri)
		shiftIndices(g.pred[n], ri)
	}
	return nil
}

func shiftIndices(s []int32, removed int32) {
	for j, v := range s {
		if v > removed {
			s[j] = v - 1
		}
	}
}

// AddEdge inserts an edge (creating endpoints if necessary) and merges attrs.
func (g *Graph) AddEdge(u, v string, attrs Attrs) {
	g.AddNode(u, nil)
	g.AddNode(v, nil)
	k := g.key(u, v)
	cur, ok := g.edges[k]
	if !ok {
		g.version++
		cur = Attrs{}
		g.edges[k] = cur
		g.edgeOrder = append(g.edgeOrder, k)
		ui, vi := g.nodeIdx[u], g.nodeIdx[v]
		g.succ[ui] = append(g.succ[ui], int32(vi))
		g.pred[vi] = append(g.pred[vi], int32(ui))
		if !g.directed && ui != vi {
			g.succ[vi] = append(g.succ[vi], int32(ui))
			g.pred[ui] = append(g.pred[ui], int32(vi))
		}
	}
	if len(attrs) == 0 {
		return
	}
	g.ownEdge(k)
	cur = g.edges[k]
	for a, val := range attrs {
		cur[a] = Normalize(val)
	}
}

// HasEdge reports whether the edge u->v (or u—v when undirected) exists.
func (g *Graph) HasEdge(u, v string) bool {
	_, ok := g.edges[g.key(u, v)]
	return ok
}

// EdgeAttrs returns the live attribute map of edge u,v or nil if absent.
func (g *Graph) EdgeAttrs(u, v string) Attrs {
	k := g.key(u, v)
	if _, ok := g.edges[k]; !ok {
		return nil
	}
	g.ownEdge(k) // the caller may write through the returned map
	return g.edges[k]
}

// SetEdgeAttr sets one attribute on an existing edge.
func (g *Graph) SetEdgeAttr(u, v, key string, value any) error {
	k := g.key(u, v)
	if _, ok := g.edges[k]; !ok {
		return fmt.Errorf("graph: edge (%q,%q) does not exist", u, v)
	}
	g.ownEdge(k)
	g.edges[k][key] = Normalize(value)
	return nil
}

// RemoveEdge deletes the edge u,v. Removing an absent edge is an error.
func (g *Graph) RemoveEdge(u, v string) error {
	k := g.key(u, v)
	if _, ok := g.edges[k]; !ok {
		return fmt.Errorf("graph: edge (%q,%q) does not exist", u, v)
	}
	g.removeEdgeKey(k)
	return nil
}

func (g *Graph) removeEdgeKey(k EdgeKey) {
	g.version++
	delete(g.edges, k)
	if g.edgeShared != nil {
		delete(g.edgeShared, k)
	}
	for i, e := range g.edgeOrder {
		if e == k {
			g.edgeOrder = append(g.edgeOrder[:i], g.edgeOrder[i+1:]...)
			break
		}
	}
	ui, uok := g.nodeIdx[k.U]
	vi, vok := g.nodeIdx[k.V]
	if !uok || !vok {
		return
	}
	g.succ[ui] = removeIndex(g.succ[ui], int32(vi))
	g.pred[vi] = removeIndex(g.pred[vi], int32(ui))
	if !g.directed && ui != vi {
		g.succ[vi] = removeIndex(g.succ[vi], int32(ui))
		g.pred[ui] = removeIndex(g.pred[ui], int32(vi))
	}
}

func removeIndex(s []int32, x int32) []int32 {
	for i, v := range s {
		if v == x {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// Nodes returns node IDs in insertion order. The slice is a copy.
func (g *Graph) Nodes() []string {
	out := make([]string, len(g.nodeOrder))
	copy(out, g.nodeOrder)
	return out
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.nodeOrder) }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Edges returns materialized edges in insertion order. Attribute maps are
// live references the caller may write through, so shared (copy-on-write)
// maps are copied first; read-only iteration should use EdgesView.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, len(g.edgeOrder))
	for _, k := range g.edgeOrder {
		g.ownEdge(k) // the caller may write through Edge.Attrs
		out = append(out, Edge{U: k.U, V: k.V, Attrs: g.edges[k]})
	}
	return out
}

// EdgesView returns materialized edges in insertion order without taking
// ownership of shared attribute maps. The caller must not mutate
// Edge.Attrs; use it for read paths (serialization, frame building) that
// would otherwise force a copy of every edge map.
func (g *Graph) EdgesView() []Edge {
	out := make([]Edge, 0, len(g.edgeOrder))
	for _, k := range g.edgeOrder {
		out = append(out, Edge{U: k.U, V: k.V, Attrs: g.edges[k]})
	}
	return out
}

// Neighbors returns the out-neighbors of id (all neighbors when undirected),
// sorted lexicographically for determinism.
func (g *Graph) Neighbors(id string) []string {
	i, ok := g.nodeIdx[id]
	if !ok {
		return []string{}
	}
	return g.idsOf(g.succ[i])
}

// Predecessors returns the in-neighbors of id (same as Neighbors when
// undirected), sorted.
func (g *Graph) Predecessors(id string) []string {
	i, ok := g.nodeIdx[id]
	if !ok {
		return []string{}
	}
	return g.idsOf(g.pred[i])
}

// idsOf maps node indices to their IDs, sorted lexicographically.
func (g *Graph) idsOf(adj []int32) []string {
	out := make([]string, len(adj))
	for j, v := range adj {
		out[j] = g.nodeOrder[v]
	}
	sort.Strings(out)
	return out
}

// Degree returns the degree of id: total degree for undirected graphs,
// in+out degree for directed graphs.
func (g *Graph) Degree(id string) int {
	i, ok := g.nodeIdx[id]
	if !ok {
		return 0
	}
	if g.directed {
		return len(g.succ[i]) + len(g.pred[i])
	}
	d := len(g.succ[i])
	if g.HasEdge(id, id) {
		d++ // NetworkX counts self-loops twice in undirected degree.
	}
	return d
}

// InDegree returns the in-degree (undirected graphs: same as Degree).
func (g *Graph) InDegree(id string) int {
	if !g.directed {
		return g.Degree(id)
	}
	if i, ok := g.nodeIdx[id]; ok {
		return len(g.pred[i])
	}
	return 0
}

// OutDegree returns the out-degree (undirected graphs: same as Degree).
func (g *Graph) OutDegree(id string) int {
	if !g.directed {
		return g.Degree(id)
	}
	if i, ok := g.nodeIdx[id]; ok {
		return len(g.succ[i])
	}
	return 0
}

// Clone returns a deep copy of the graph (attribute maps are copied one
// level deep, matching Attrs.Clone). Cloning a frozen graph — or a clone of
// one — shares attribute maps copy-on-write instead of copying them, which
// makes cloning an immutable master nearly free and safe to do from many
// goroutines at once.
func (g *Graph) Clone() *Graph {
	n := len(g.nodeOrder)
	c := &Graph{
		directed:  g.directed,
		version:   g.version,
		nodeOrder: append([]string(nil), g.nodeOrder...),
		nodeIdx:   make(map[string]int, n),
		nodeAttrs: make([]Attrs, n),
		edgeOrder: append([]EdgeKey(nil), g.edgeOrder...),
		edges:     make(map[EdgeKey]Attrs, len(g.edges)),
		succ:      cloneAdjacency(g.succ),
		pred:      cloneAdjacency(g.pred),
	}
	for id, i := range g.nodeIdx {
		c.nodeIdx[id] = i
	}
	if g.sharesAttrs() {
		// COW mode: share every map the source does not exclusively own.
		c.nodeShared = make([]bool, n)
		c.edgeShared = make(map[EdgeKey]bool, len(g.edges))
		for i, a := range g.nodeAttrs {
			if g.nodeShared != nil && g.nodeShared[i] {
				c.nodeAttrs[i] = a
				c.nodeShared[i] = true
			} else {
				c.nodeAttrs[i] = a.Clone()
			}
		}
		for k, a := range g.edges {
			if g.edgeShared != nil && g.edgeShared[k] {
				c.edges[k] = a
				c.edgeShared[k] = true
			} else {
				c.edges[k] = a.Clone()
			}
		}
		if g.attrsShared {
			c.attrs = g.attrs
			c.attrsShared = true
		} else {
			c.attrs = g.attrs.Clone()
		}
	} else {
		for i, a := range g.nodeAttrs {
			c.nodeAttrs[i] = a.Clone()
		}
		for k, a := range g.edges {
			c.edges[k] = a.Clone()
		}
		c.attrs = g.attrs.Clone()
	}
	if c.attrs == nil {
		c.attrs = Attrs{}
	}
	return c
}

// cloneAdjacency deep-copies adjacency lists into one shared backing array.
func cloneAdjacency(adj [][]int32) [][]int32 {
	total := 0
	for _, a := range adj {
		total += len(a)
	}
	out := make([][]int32, len(adj))
	backing := make([]int32, total)
	off := 0
	for i, a := range adj {
		if len(a) == 0 {
			continue
		}
		end := off + len(a)
		copy(backing[off:end], a)
		out[i] = backing[off:end:end]
		off = end
	}
	return out
}

// Merge unions other's nodes and edges into g: nodes and edges absent from
// g are appended in other's insertion order, and attribute maps are merged
// key-by-key with other's values winning. Merge reads other through
// read-only views, so merging from a frozen master (or a clone of one)
// never defeats its copy-on-write sharing; the written maps in g are owned
// copies. Merging shard-level subgraphs that were partitioned from one
// stream reassembles the full graph.
func (g *Graph) Merge(other *Graph) {
	for i, id := range other.nodeOrder {
		g.AddNode(id, other.nodeView(i))
	}
	for _, k := range other.edgeOrder {
		g.AddEdge(k.U, k.V, other.edgeView(k))
	}
}

// Subgraph returns a new graph induced by keep: it contains every listed
// node present in g and every edge whose endpoints are both kept.
func (g *Graph) Subgraph(keep []string) *Graph {
	in := make(map[string]bool, len(keep))
	for _, n := range keep {
		if g.HasNode(n) {
			in[n] = true
		}
	}
	s := newGraph(g.directed)
	for _, n := range g.nodeOrder {
		if in[n] {
			s.AddNode(n, g.nodeViewByID(n))
		}
	}
	for _, k := range g.edgeOrder {
		if in[k.U] && in[k.V] {
			s.AddEdge(k.U, k.V, g.edges[k])
		}
	}
	return s
}

// Reverse returns a copy of a directed graph with all edges reversed; for an
// undirected graph it is equivalent to Clone.
func (g *Graph) Reverse() *Graph {
	if !g.directed {
		return g.Clone()
	}
	r := newGraph(true)
	r.attrs = g.attrs.Clone()
	for _, n := range g.nodeOrder {
		r.AddNode(n, g.nodeViewByID(n))
	}
	for _, k := range g.edgeOrder {
		r.AddEdge(k.V, k.U, g.edges[k])
	}
	return r
}

// String summarizes the graph, e.g. "DiGraph(12 nodes, 30 edges)".
func (g *Graph) String() string {
	kind := "Graph"
	if g.directed {
		kind = "DiGraph"
	}
	return fmt.Sprintf("%s(%d nodes, %d edges)", kind, g.NumNodes(), g.NumEdges())
}

package graph

import (
	"encoding/json"
	"fmt"
)

// nodeLink is the node-link JSON schema (the same shape NetworkX's
// node_link_data produces), used by the strawman baseline to serialize the
// whole graph into the LLM prompt and by the benchmark for persistence.
type nodeLink struct {
	Directed bool             `json:"directed"`
	Graph    map[string]any   `json:"graph"`
	Nodes    []map[string]any `json:"nodes"`
	Links    []map[string]any `json:"links"`
}

// MarshalJSON encodes the graph in node-link format with nodes and edges in
// insertion order.
func (g *Graph) MarshalJSON() ([]byte, error) {
	nl := nodeLink{
		Directed: g.directed,
		Graph:    map[string]any(g.attrs),
		Nodes:    make([]map[string]any, 0, g.NumNodes()),
		Links:    make([]map[string]any, 0, g.NumEdges()),
	}
	for i, n := range g.nodeOrder {
		entry := map[string]any{"id": n}
		for k, v := range g.nodeView(i) {
			entry[k] = v
		}
		nl.Nodes = append(nl.Nodes, entry)
	}
	for _, k := range g.edgeOrder {
		entry := map[string]any{"source": k.U, "target": k.V}
		for a, v := range g.edges[k] {
			entry[a] = v
		}
		nl.Links = append(nl.Links, entry)
	}
	return json.Marshal(nl)
}

// UnmarshalJSON decodes node-link JSON produced by MarshalJSON (or by
// NetworkX's node_link_data with default keys).
func (g *Graph) UnmarshalJSON(data []byte) error {
	var nl nodeLink
	if err := json.Unmarshal(data, &nl); err != nil {
		return fmt.Errorf("graph: decoding node-link JSON: %w", err)
	}
	*g = *newGraph(nl.Directed)
	for k, v := range nl.Graph {
		g.attrs[k] = normalizeJSON(v)
	}
	for _, n := range nl.Nodes {
		id, ok := n["id"].(string)
		if !ok {
			return fmt.Errorf("graph: node entry missing string id: %v", n)
		}
		attrs := Attrs{}
		for k, v := range n {
			if k != "id" {
				attrs[k] = normalizeJSON(v)
			}
		}
		g.AddNode(id, attrs)
	}
	for _, e := range nl.Links {
		src, ok1 := e["source"].(string)
		dst, ok2 := e["target"].(string)
		if !ok1 || !ok2 {
			return fmt.Errorf("graph: link entry missing source/target: %v", e)
		}
		attrs := Attrs{}
		for k, v := range e {
			if k != "source" && k != "target" {
				attrs[k] = normalizeJSON(v)
			}
		}
		g.AddEdge(src, dst, attrs)
	}
	return nil
}

// normalizeJSON converts json.Unmarshal's generic values into the graph's
// normalized attribute domain: float64 that holds an integral value becomes
// int64 (JSON has no integer type; network weights are semantically ints).
func normalizeJSON(v any) any {
	switch x := v.(type) {
	case float64:
		if x == float64(int64(x)) {
			return int64(x)
		}
		return x
	case []any:
		out := make([]any, len(x))
		for i, e := range x {
			out[i] = normalizeJSON(e)
		}
		return out
	case map[string]any:
		out := make(map[string]any, len(x))
		for k, e := range x {
			out[k] = normalizeJSON(e)
		}
		return out
	default:
		return v
	}
}

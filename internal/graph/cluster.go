package graph

import (
	"math"
	"sort"
)

// KMeans1D clusters scalar values into k groups using deterministic 1-D
// k-means: initial centroids are evenly spaced quantiles of the sorted
// values, and Lloyd iterations run until assignment fixpoint (or maxIter).
// It returns the cluster index (0..k-1, ordered by ascending centroid) for
// each input value, aligned with the input slice.
//
// The benchmark's "cluster nodes into 5 groups by total byte weight" query
// uses this; determinism matters so golden answers are stable.
func KMeans1D(values []float64, k int, maxIter int) []int {
	n := len(values)
	if n == 0 || k <= 0 {
		return nil
	}
	if k > n {
		k = n
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	centroids := make([]float64, k)
	for i := 0; i < k; i++ {
		// Quantile midpoints: deterministic and spread across the range.
		idx := (2*i + 1) * n / (2 * k)
		if idx >= n {
			idx = n - 1
		}
		centroids[i] = sorted[idx]
	}
	assign := make([]int, n)
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i, v := range values {
			best, bestD := 0, math.Inf(1)
			for c, ctr := range centroids {
				d := math.Abs(v - ctr)
				if d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		sums := make([]float64, k)
		counts := make([]int, k)
		for i, v := range values {
			sums[assign[i]] += v
			counts[assign[i]]++
		}
		for c := 0; c < k; c++ {
			if counts[c] > 0 {
				centroids[c] = sums[c] / float64(counts[c])
			}
		}
		if !changed && iter > 0 {
			break
		}
	}
	// Relabel clusters so that index order follows ascending centroid.
	type cw struct {
		idx int
		ctr float64
	}
	order := make([]cw, k)
	for i := range order {
		order[i] = cw{i, centroids[i]}
	}
	sort.Slice(order, func(i, j int) bool { return order[i].ctr < order[j].ctr })
	remap := make([]int, k)
	for newIdx, o := range order {
		remap[o.idx] = newIdx
	}
	out := make([]int, n)
	for i, a := range assign {
		out[i] = remap[a]
	}
	return out
}

// ClusterNodesBy clusters all nodes into k groups keyed by fn(node) and
// returns node -> cluster index (0..k-1 by ascending cluster centroid).
func (g *Graph) ClusterNodesBy(k int, fn func(id string) float64) map[string]int {
	nodes := g.Nodes()
	vals := make([]float64, len(nodes))
	for i, n := range nodes {
		vals[i] = fn(n)
	}
	assign := KMeans1D(vals, k, 100)
	out := make(map[string]int, len(nodes))
	for i, n := range nodes {
		out[n] = assign[i]
	}
	return out
}

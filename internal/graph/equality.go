package graph

import (
	"fmt"
	"sort"
	"strings"
)

// Equal reports whether two graphs are identical: same directedness, node
// set, edge set, and attribute maps (deep value equality after
// normalization). Insertion order is deliberately ignored.
func Equal(a, b *Graph) bool {
	return Diff(a, b) == ""
}

// Diff returns a human-readable description of the first few differences
// between two graphs, or "" when they are equal. The benchmark evaluator
// uses this to explain "graphs are not identical" failures.
func Diff(a, b *Graph) string {
	var diffs []string
	add := func(format string, args ...any) {
		if len(diffs) < 8 {
			diffs = append(diffs, fmt.Sprintf(format, args...))
		}
	}
	if a.directed != b.directed {
		add("directedness differs: %v vs %v", a.directed, b.directed)
	}
	if !ValueEqual(map[string]any(a.attrs), map[string]any(b.attrs)) {
		add("graph attributes differ")
	}
	for i, n := range a.nodeOrder {
		battrs := b.nodeViewByID(n)
		if battrs == nil {
			add("node %q missing from second graph", n)
			continue
		}
		if !ValueEqual(map[string]any(a.nodeView(i)), map[string]any(battrs)) {
			add("node %q attributes differ: %v vs %v", n, a.nodeView(i), battrs)
		}
	}
	for _, n := range b.nodeOrder {
		if !a.HasNode(n) {
			add("node %q missing from first graph", n)
		}
	}
	for k, av := range a.edges {
		bv, ok := b.edges[k]
		if !ok {
			add("edge (%q,%q) missing from second graph", k.U, k.V)
			continue
		}
		if !ValueEqual(map[string]any(av), map[string]any(bv)) {
			add("edge (%q,%q) attributes differ: %v vs %v", k.U, k.V, av, bv)
		}
	}
	for k := range b.edges {
		if _, ok := a.edges[k]; !ok {
			add("edge (%q,%q) missing from first graph", k.U, k.V)
		}
	}
	return strings.Join(diffs, "; ")
}

// ValueEqual compares two attribute-style values deeply after normalization.
// Numeric comparison treats int64 and float64 with equal magnitude as equal
// (generated code frequently mixes them). Lists compare element-wise; maps
// compare key-wise.
func ValueEqual(a, b any) bool {
	a, b = Normalize(a), Normalize(b)
	switch x := a.(type) {
	case nil:
		return b == nil
	case bool:
		y, ok := b.(bool)
		return ok && x == y
	case string:
		y, ok := b.(string)
		return ok && x == y
	case int64:
		switch y := b.(type) {
		case int64:
			return x == y
		case float64:
			return float64(x) == y
		}
		return false
	case float64:
		switch y := b.(type) {
		case int64:
			return x == float64(y)
		case float64:
			return x == y
		}
		return false
	case []any:
		y, ok := b.([]any)
		if !ok || len(x) != len(y) {
			return false
		}
		for i := range x {
			if !ValueEqual(x[i], y[i]) {
				return false
			}
		}
		return true
	case map[string]any:
		y, ok := toStringMap(b)
		if !ok {
			return false
		}
		if len(x) != len(y) {
			return false
		}
		for k, v := range x {
			w, ok := y[k]
			if !ok || !ValueEqual(v, w) {
				return false
			}
		}
		return true
	default:
		// Attrs and other map aliases.
		if m, ok := toStringMap(a); ok {
			return ValueEqual(m, b)
		}
		return fmt.Sprintf("%v", a) == fmt.Sprintf("%v", b)
	}
}

func toStringMap(v any) (map[string]any, bool) {
	switch m := v.(type) {
	case map[string]any:
		return m, true
	case Attrs:
		return map[string]any(m), true
	default:
		return nil, false
	}
}

// Fingerprint returns a canonical string capturing the full graph content:
// useful in tests and for hashing results.
func (g *Graph) Fingerprint() string {
	var sb strings.Builder
	if g.directed {
		sb.WriteString("digraph\n")
	} else {
		sb.WriteString("graph\n")
	}
	nodes := g.Nodes()
	sort.Strings(nodes)
	for _, n := range nodes {
		sb.WriteString("n ")
		sb.WriteString(n)
		sb.WriteString(" ")
		sb.WriteString(canonAttrs(g.nodeViewByID(n)))
		sb.WriteString("\n")
	}
	keys := make([]EdgeKey, 0, len(g.edges))
	for k := range g.edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].U != keys[j].U {
			return keys[i].U < keys[j].U
		}
		return keys[i].V < keys[j].V
	})
	for _, k := range keys {
		fmt.Fprintf(&sb, "e %s %s %s\n", k.U, k.V, canonAttrs(g.edges[k]))
	}
	return sb.String()
}

func canonAttrs(a Attrs) string {
	if len(a) == 0 {
		return "{}"
	}
	keys := make([]string, 0, len(a))
	for k := range a {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteString("{")
	for i, k := range keys {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, "%s=%s", k, CanonValue(a[k]))
	}
	sb.WriteString("}")
	return sb.String()
}

// CanonValue renders a value canonically (maps sorted by key, floats that
// are integral rendered without decimals) for fingerprinting.
func CanonValue(v any) string {
	switch x := Normalize(v).(type) {
	case nil:
		return "nil"
	case bool:
		return fmt.Sprintf("%v", x)
	case string:
		return fmt.Sprintf("%q", x)
	case int64:
		return fmt.Sprintf("%d", x)
	case float64:
		if x == float64(int64(x)) {
			return fmt.Sprintf("%d", int64(x))
		}
		return fmt.Sprintf("%g", x)
	case []any:
		parts := make([]string, len(x))
		for i, e := range x {
			parts[i] = CanonValue(e)
		}
		return "[" + strings.Join(parts, ",") + "]"
	case map[string]any:
		return canonAttrs(Attrs(x))
	case Attrs:
		return canonAttrs(x)
	default:
		return fmt.Sprintf("%v", x)
	}
}

package graph

import (
	"sort"
	"sync"
)

// prBufPool recycles PageRank's per-call iteration vectors (rank, next,
// reciprocal out-degrees in one backing array).
var prBufPool sync.Pool

// DegreeCentrality returns degree/(n-1) for every node (NetworkX semantics).
func (g *Graph) DegreeCentrality() map[string]float64 {
	out := make(map[string]float64, g.NumNodes())
	n := g.NumNodes()
	if n <= 1 {
		for _, id := range g.nodeOrder {
			out[id] = 0
		}
		return out
	}
	scale := 1.0 / float64(n-1)
	for _, id := range g.nodeOrder {
		out[id] = float64(g.Degree(id)) * scale
	}
	return out
}

// ClosenessCentrality returns, for each node, (r-1)/total_dist * (r-1)/(n-1)
// where r is the number of nodes reachable *to* the node (NetworkX uses
// incoming distance for directed graphs; we BFS over the predecessor
// adjacency, which is equivalent to outgoing BFS on the reversed graph).
func (g *Graph) ClosenessCentrality() map[string]float64 {
	n := len(g.nodeOrder)
	out := make(map[string]float64, n)
	adj := g.succ
	if g.directed {
		adj = g.pred
	}
	dist := make([]int32, n)
	queue := make([]int32, 0, n)
	for i, id := range g.nodeOrder {
		g.bfsDistFrom(int32(i), adj, dist, &queue)
		total, r := 0, 0
		for _, d := range dist {
			if d < 0 {
				continue
			}
			total += int(d)
			r++ // includes self
		}
		if total > 0 && n > 1 {
			c := float64(r-1) / float64(total)
			c *= float64(r-1) / float64(n-1)
			out[id] = c
		} else {
			out[id] = 0
		}
	}
	return out
}

// sortedSucc returns each node's out-neighbor indices ordered
// lexicographically by neighbor ID, sharing one backing array. Traversals
// that must visit neighbors in sorted order (for reproducible float
// accumulation) compute this once instead of sorting per visit.
func (g *Graph) sortedSucc() [][]int32 {
	n := len(g.nodeOrder)
	total := 0
	for _, a := range g.succ {
		total += len(a)
	}
	backing := make([]int32, total)
	out := make([][]int32, n)
	off := 0
	for i, a := range g.succ {
		if len(a) == 0 {
			continue
		}
		end := off + len(a)
		s := backing[off:end:end]
		copy(s, a)
		sort.Slice(s, func(x, y int) bool { return g.nodeOrder[s[x]] < g.nodeOrder[s[y]] })
		out[i] = s
		off = end
	}
	return out
}

// BetweennessCentrality computes exact betweenness via Brandes' algorithm
// (unweighted). When normalized, values are scaled by 1/((n-1)(n-2)) for
// directed graphs and 2/((n-1)(n-2)) for undirected graphs.
func (g *Graph) BetweennessCentrality(normalized bool) map[string]float64 {
	n := len(g.nodeOrder)
	adj := g.sortedSucc() // sorted visit order keeps accumulation reproducible
	bc := make([]float64, n)
	stack := make([]int32, 0, n)
	queue := make([]int32, 0, n)
	preds := make([][]int32, n)
	sigma := make([]float64, n)
	dist := make([]int32, n)
	delta := make([]float64, n)
	for s := 0; s < n; s++ {
		// Single-source shortest paths (BFS).
		stack = stack[:0]
		for i := 0; i < n; i++ {
			preds[i] = preds[i][:0]
			sigma[i] = 0
			dist[i] = -1
			delta[i] = 0
		}
		sigma[s] = 1
		dist[s] = 0
		queue = append(queue[:0], int32(s))
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			stack = append(stack, v)
			for _, w := range adj[v] {
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					queue = append(queue, w)
				}
				if dist[w] == dist[v]+1 {
					sigma[w] += sigma[v]
					preds[w] = append(preds[w], v)
				}
			}
		}
		// Accumulation.
		for i := len(stack) - 1; i >= 0; i-- {
			w := stack[i]
			for _, v := range preds[w] {
				delta[v] += sigma[v] / sigma[w] * (1 + delta[w])
			}
			if int(w) != s {
				bc[w] += delta[w]
			}
		}
	}
	if !g.directed {
		for i := range bc {
			bc[i] /= 2
		}
	}
	if normalized && n > 2 {
		scale := 1.0 / (float64(n-1) * float64(n-2))
		if !g.directed {
			scale *= 2
		}
		for i := range bc {
			bc[i] *= scale
		}
	}
	out := make(map[string]float64, n)
	for i, id := range g.nodeOrder {
		out[id] = bc[i]
	}
	return out
}

// PageRank computes PageRank with damping factor d until the L1 change drops
// below tol or maxIter iterations elapse. Dangling nodes distribute their
// rank uniformly, matching NetworkX.
func (g *Graph) PageRank(d float64, maxIter int, tol float64) map[string]float64 {
	n := len(g.nodeOrder)
	out := make(map[string]float64, n)
	if n == 0 {
		return out
	}
	// One pooled backing array for the three per-node float vectors — the
	// evaluation matrix runs PageRank once per trial, so recycling the
	// iteration state keeps the steady-state allocation bill at just the
	// result map. invDeg holds precomputed reciprocal out-degrees, so the
	// power iteration performs one multiply per node per sweep instead of
	// a division — the only per-node work besides the scatter itself.
	// Every element of all three vectors is written before first read
	// (rank and invDeg below, next at the top of each sweep), so the
	// pooled memory needs no clearing.
	bufp, _ := prBufPool.Get().(*[]float64)
	if bufp == nil || cap(*bufp) < 3*n {
		b := make([]float64, 3*n)
		bufp = &b
	}
	buf := (*bufp)[:3*n]
	defer prBufPool.Put(bufp)
	rank, next, invDeg := buf[:n], buf[n:2*n], buf[2*n:]
	for i := range rank {
		rank[i] = 1.0 / float64(n)
	}
	for i := 0; i < n; i++ {
		if deg := len(g.succ[i]); deg > 0 {
			invDeg[i] = 1.0 / float64(deg)
		} else {
			invDeg[i] = 0
		}
	}
	succ := g.succ
	for iter := 0; iter < maxIter; iter++ {
		for i := range next {
			next[i] = 0
		}
		dangling := 0.0
		for i := 0; i < n; i++ {
			nbs := succ[i]
			if len(nbs) == 0 {
				dangling += rank[i]
				continue
			}
			share := rank[i] * invDeg[i]
			for _, nb := range nbs {
				next[nb] += share
			}
		}
		base := (1-d)/float64(n) + d*dangling/float64(n)
		change := 0.0
		for i := 0; i < n; i++ {
			v := base + d*next[i]
			diff := v - rank[i]
			if diff < 0 {
				diff = -diff
			}
			change += diff
			rank[i] = v
		}
		if change < tol {
			break
		}
	}
	for i, id := range g.nodeOrder {
		out[id] = rank[i]
	}
	return out
}

// ClusteringCoefficient returns the local clustering coefficient of each
// node treating the graph as undirected (standard triangle-based formula).
func (g *Graph) ClusteringCoefficient() map[string]float64 {
	und := g
	if g.directed {
		und = g.AsUndirected()
	}
	out := make(map[string]float64, g.NumNodes())
	for _, id := range g.nodeOrder {
		nbrs := und.Neighbors(id)
		// Exclude self-loops from neighborhood.
		filtered := nbrs[:0:0]
		for _, nb := range nbrs {
			if nb != id {
				filtered = append(filtered, nb)
			}
		}
		k := len(filtered)
		if k < 2 {
			out[id] = 0
			continue
		}
		links := 0
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				if und.HasEdge(filtered[i], filtered[j]) {
					links++
				}
			}
		}
		out[id] = 2 * float64(links) / float64(k*(k-1))
	}
	return out
}

// AverageClustering returns the mean local clustering coefficient.
func (g *Graph) AverageClustering() float64 {
	cc := g.ClusteringCoefficient()
	if len(cc) == 0 {
		return 0
	}
	total := 0.0
	for _, v := range cc {
		total += v
	}
	return total / float64(len(cc))
}

// AsUndirected returns an undirected copy of the graph. Edge attributes of
// anti-parallel directed edges are merged, later edge winning per key.
func (g *Graph) AsUndirected() *Graph {
	u := New()
	u.attrs = g.attrs.Clone()
	for _, n := range g.nodeOrder {
		u.AddNode(n, g.nodeViewByID(n))
	}
	for _, k := range g.edgeOrder {
		u.AddEdge(k.U, k.V, g.edges[k])
	}
	return u
}

// TopNByDegree returns the n nodes with the highest degree, ties broken by
// node ID, as (node, degree) pairs in descending order.
func (g *Graph) TopNByDegree(n int) []struct {
	Node   string
	Degree int
} {
	type nd struct {
		Node   string
		Degree int
	}
	all := make([]nd, 0, g.NumNodes())
	for _, id := range g.nodeOrder {
		all = append(all, nd{id, g.Degree(id)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Degree != all[j].Degree {
			return all[i].Degree > all[j].Degree
		}
		return all[i].Node < all[j].Node
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]struct {
		Node   string
		Degree int
	}, n)
	for i := 0; i < n; i++ {
		out[i] = struct {
			Node   string
			Degree int
		}{all[i].Node, all[i].Degree}
	}
	return out
}

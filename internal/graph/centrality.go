package graph

import "sort"

// DegreeCentrality returns degree/(n-1) for every node (NetworkX semantics).
func (g *Graph) DegreeCentrality() map[string]float64 {
	out := make(map[string]float64, g.NumNodes())
	n := g.NumNodes()
	if n <= 1 {
		for _, id := range g.nodeOrder {
			out[id] = 0
		}
		return out
	}
	scale := 1.0 / float64(n-1)
	for _, id := range g.nodeOrder {
		out[id] = float64(g.Degree(id)) * scale
	}
	return out
}

// ClosenessCentrality returns, for each node, (r-1)/total_dist * (r-1)/(n-1)
// where r is the number of nodes reachable *to* the node (NetworkX uses
// incoming distance for directed graphs; we use outgoing BFS on the reversed
// graph which is equivalent).
func (g *Graph) ClosenessCentrality() map[string]float64 {
	out := make(map[string]float64, g.NumNodes())
	work := g
	if g.directed {
		work = g.Reverse()
	}
	n := g.NumNodes()
	for _, id := range g.nodeOrder {
		dist := work.bfsDistances(id)
		total := 0
		for _, d := range dist {
			total += d
		}
		r := len(dist) // includes self
		if total > 0 && n > 1 {
			c := float64(r-1) / float64(total)
			c *= float64(r-1) / float64(n-1)
			out[id] = c
		} else {
			out[id] = 0
		}
	}
	return out
}

// BetweennessCentrality computes exact betweenness via Brandes' algorithm
// (unweighted). When normalized, values are scaled by 1/((n-1)(n-2)) for
// directed graphs and 2/((n-1)(n-2)) for undirected graphs.
func (g *Graph) BetweennessCentrality(normalized bool) map[string]float64 {
	bc := make(map[string]float64, g.NumNodes())
	for _, n := range g.nodeOrder {
		bc[n] = 0
	}
	for _, s := range g.nodeOrder {
		// Single-source shortest paths (BFS).
		var stack []string
		preds := map[string][]string{}
		sigma := map[string]float64{s: 1}
		dist := map[string]int{s: 0}
		queue := []string{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			stack = append(stack, v)
			for _, w := range g.Neighbors(v) {
				if _, seen := dist[w]; !seen {
					dist[w] = dist[v] + 1
					queue = append(queue, w)
				}
				if dist[w] == dist[v]+1 {
					sigma[w] += sigma[v]
					preds[w] = append(preds[w], v)
				}
			}
		}
		// Accumulation.
		delta := map[string]float64{}
		for i := len(stack) - 1; i >= 0; i-- {
			w := stack[i]
			for _, v := range preds[w] {
				delta[v] += sigma[v] / sigma[w] * (1 + delta[w])
			}
			if w != s {
				bc[w] += delta[w]
			}
		}
	}
	n := g.NumNodes()
	if !g.directed {
		for k := range bc {
			bc[k] /= 2
		}
	}
	if normalized && n > 2 {
		scale := 1.0 / (float64(n-1) * float64(n-2))
		if !g.directed {
			scale *= 2
		}
		for k := range bc {
			bc[k] *= scale
		}
	}
	return bc
}

// PageRank computes PageRank with damping factor d until the L1 change drops
// below tol or maxIter iterations elapse. Dangling nodes distribute their
// rank uniformly, matching NetworkX.
func (g *Graph) PageRank(d float64, maxIter int, tol float64) map[string]float64 {
	n := g.NumNodes()
	out := make(map[string]float64, n)
	if n == 0 {
		return out
	}
	rank := make(map[string]float64, n)
	for _, id := range g.nodeOrder {
		rank[id] = 1.0 / float64(n)
	}
	for iter := 0; iter < maxIter; iter++ {
		next := make(map[string]float64, n)
		dangling := 0.0
		for _, id := range g.nodeOrder {
			outdeg := len(g.succ[id])
			if outdeg == 0 {
				dangling += rank[id]
				continue
			}
			share := rank[id] / float64(outdeg)
			for nb := range g.succ[id] {
				next[nb] += share
			}
		}
		base := (1-d)/float64(n) + d*dangling/float64(n)
		change := 0.0
		for _, id := range g.nodeOrder {
			v := base + d*next[id]
			diff := v - rank[id]
			if diff < 0 {
				diff = -diff
			}
			change += diff
			rank[id] = v
		}
		if change < tol {
			break
		}
	}
	for k, v := range rank {
		out[k] = v
	}
	return out
}

// ClusteringCoefficient returns the local clustering coefficient of each
// node treating the graph as undirected (standard triangle-based formula).
func (g *Graph) ClusteringCoefficient() map[string]float64 {
	und := g
	if g.directed {
		und = g.AsUndirected()
	}
	out := make(map[string]float64, g.NumNodes())
	for _, id := range g.nodeOrder {
		nbrs := und.Neighbors(id)
		// Exclude self-loops from neighborhood.
		filtered := nbrs[:0:0]
		for _, nb := range nbrs {
			if nb != id {
				filtered = append(filtered, nb)
			}
		}
		k := len(filtered)
		if k < 2 {
			out[id] = 0
			continue
		}
		links := 0
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				if und.HasEdge(filtered[i], filtered[j]) {
					links++
				}
			}
		}
		out[id] = 2 * float64(links) / float64(k*(k-1))
	}
	return out
}

// AverageClustering returns the mean local clustering coefficient.
func (g *Graph) AverageClustering() float64 {
	cc := g.ClusteringCoefficient()
	if len(cc) == 0 {
		return 0
	}
	total := 0.0
	for _, v := range cc {
		total += v
	}
	return total / float64(len(cc))
}

// AsUndirected returns an undirected copy of the graph. Edge attributes of
// anti-parallel directed edges are merged, later edge winning per key.
func (g *Graph) AsUndirected() *Graph {
	u := New()
	u.attrs = g.attrs.Clone()
	for _, n := range g.nodeOrder {
		u.AddNode(n, g.nodes[n].Clone())
	}
	for _, k := range g.edgeOrder {
		u.AddEdge(k.U, k.V, g.edges[k].Clone())
	}
	return u
}

// TopNByDegree returns the n nodes with the highest degree, ties broken by
// node ID, as (node, degree) pairs in descending order.
func (g *Graph) TopNByDegree(n int) []struct {
	Node   string
	Degree int
} {
	type nd struct {
		Node   string
		Degree int
	}
	all := make([]nd, 0, g.NumNodes())
	for _, id := range g.nodeOrder {
		all = append(all, nd{id, g.Degree(id)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Degree != all[j].Degree {
			return all[i].Degree > all[j].Degree
		}
		return all[i].Node < all[j].Node
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]struct {
		Node   string
		Degree int
	}, n)
	for i := 0; i < n; i++ {
		out[i] = struct {
			Node   string
			Degree int
		}{all[i].Node, all[i].Degree}
	}
	return out
}

package graph

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// BFS returns nodes reachable from src in breadth-first order (following
// out-edges in directed graphs). src itself is first. Unknown src yields nil.
func (g *Graph) BFS(src string) []string {
	if !g.HasNode(src) {
		return nil
	}
	seen := map[string]bool{src: true}
	order := []string{src}
	queue := []string{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range g.Neighbors(cur) {
			if !seen[nb] {
				seen[nb] = true
				order = append(order, nb)
				queue = append(queue, nb)
			}
		}
	}
	return order
}

// DFS returns nodes reachable from src in depth-first preorder, visiting
// neighbors in sorted order for determinism.
func (g *Graph) DFS(src string) []string {
	if !g.HasNode(src) {
		return nil
	}
	seen := map[string]bool{}
	var order []string
	var visit func(string)
	visit = func(n string) {
		if seen[n] {
			return
		}
		seen[n] = true
		order = append(order, n)
		for _, nb := range g.Neighbors(n) {
			visit(nb)
		}
	}
	visit(src)
	return order
}

// ShortestPath returns the minimum-hop path from src to dst (inclusive) via
// BFS, or an error if either endpoint is missing or no path exists.
func (g *Graph) ShortestPath(src, dst string) ([]string, error) {
	if !g.HasNode(src) {
		return nil, fmt.Errorf("graph: node %q does not exist", src)
	}
	if !g.HasNode(dst) {
		return nil, fmt.Errorf("graph: node %q does not exist", dst)
	}
	if src == dst {
		return []string{src}, nil
	}
	prev := map[string]string{src: src}
	queue := []string{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range g.Neighbors(cur) {
			if _, ok := prev[nb]; ok {
				continue
			}
			prev[nb] = cur
			if nb == dst {
				return rebuildPath(prev, src, dst), nil
			}
			queue = append(queue, nb)
		}
	}
	return nil, fmt.Errorf("graph: no path between %q and %q", src, dst)
}

func rebuildPath(prev map[string]string, src, dst string) []string {
	var rev []string
	for cur := dst; ; cur = prev[cur] {
		rev = append(rev, cur)
		if cur == src {
			break
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// HopCount returns the number of hops (edges) on the shortest path from src
// to dst, or an error when unreachable.
func (g *Graph) HopCount(src, dst string) (int, error) {
	p, err := g.ShortestPath(src, dst)
	if err != nil {
		return 0, err
	}
	return len(p) - 1, nil
}

type pqItem struct {
	node string
	dist float64
}

type pq []pqItem

func (p pq) Len() int      { return len(p) }
func (p pq) Swap(i, j int) { p[i], p[j] = p[j], p[i] }
func (p pq) Less(i, j int) bool {
	if p[i].dist != p[j].dist {
		return p[i].dist < p[j].dist
	}
	return p[i].node < p[j].node
}
func (p *pq) Push(x any) { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() any {
	old := *p
	n := len(old)
	it := old[n-1]
	*p = old[:n-1]
	return it
}

// DijkstraPath returns the minimum-weight path from src to dst using the
// named edge attribute as weight (missing attribute counts as weight 1;
// negative weights are rejected). It also returns the total path weight.
func (g *Graph) DijkstraPath(src, dst, weightAttr string) ([]string, float64, error) {
	if !g.HasNode(src) {
		return nil, 0, fmt.Errorf("graph: node %q does not exist", src)
	}
	if !g.HasNode(dst) {
		return nil, 0, fmt.Errorf("graph: node %q does not exist", dst)
	}
	dist := map[string]float64{src: 0}
	prev := map[string]string{src: src}
	done := map[string]bool{}
	h := &pq{{node: src, dist: 0}}
	for h.Len() > 0 {
		it := heap.Pop(h).(pqItem)
		if done[it.node] {
			continue
		}
		done[it.node] = true
		if it.node == dst {
			return rebuildPath(prev, src, dst), it.dist, nil
		}
		for _, nb := range g.Neighbors(it.node) {
			w := 1.0
			// Read-only attribute access: bypass EdgeAttrs so a routing
			// query does not defeat copy-on-write sharing.
			if a := g.edgeView(g.key(it.node, nb)); a != nil {
				if raw, ok := a[weightAttr]; ok {
					wf, ok := ToFloat(raw)
					if !ok {
						return nil, 0, fmt.Errorf("graph: edge (%q,%q) attribute %q is not numeric", it.node, nb, weightAttr)
					}
					w = wf
				}
			}
			if w < 0 {
				return nil, 0, fmt.Errorf("graph: negative weight on edge (%q,%q)", it.node, nb)
			}
			nd := it.dist + w
			if old, ok := dist[nb]; !ok || nd < old {
				dist[nb] = nd
				prev[nb] = it.node
				heap.Push(h, pqItem{node: nb, dist: nd})
			}
		}
	}
	return nil, 0, fmt.Errorf("graph: no path between %q and %q", src, dst)
}

// ToFloat converts a normalized attribute value to float64.
func ToFloat(v any) (float64, bool) {
	switch x := Normalize(v).(type) {
	case int64:
		return float64(x), true
	case float64:
		return x, true
	default:
		return 0, false
	}
}

// ConnectedComponents returns the connected components of the graph ignoring
// edge direction, each sorted, largest first (ties broken by first node).
func (g *Graph) ConnectedComponents() [][]string {
	n := len(g.nodeOrder)
	seen := make([]bool, n)
	queue := make([]int32, 0, n)
	var comps [][]string
	for start := 0; start < n; start++ {
		if seen[start] {
			continue
		}
		var comp []string
		queue = append(queue[:0], int32(start))
		seen[start] = true
		for head := 0; head < len(queue); head++ {
			cur := queue[head]
			comp = append(comp, g.nodeOrder[cur])
			for _, nb := range g.succ[cur] {
				if !seen[nb] {
					seen[nb] = true
					queue = append(queue, nb)
				}
			}
			for _, nb := range g.pred[cur] {
				if !seen[nb] {
					seen[nb] = true
					queue = append(queue, nb)
				}
			}
		}
		sort.Strings(comp)
		comps = append(comps, comp)
	}
	sort.Slice(comps, func(i, j int) bool {
		if len(comps[i]) != len(comps[j]) {
			return len(comps[i]) > len(comps[j])
		}
		return comps[i][0] < comps[j][0]
	})
	return comps
}

// StronglyConnectedComponents returns the SCCs of a directed graph using
// Tarjan's algorithm (iterative), each sorted, largest first. For an
// undirected graph it matches ConnectedComponents.
func (g *Graph) StronglyConnectedComponents() [][]string {
	if !g.directed {
		return g.ConnectedComponents()
	}
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var comps [][]string
	next := 0

	type frame struct {
		node string
		nbrs []string
		i    int
	}
	for _, root := range g.nodeOrder {
		if _, ok := index[root]; ok {
			continue
		}
		var callStack []frame
		push := func(n string) {
			index[n] = next
			low[n] = next
			next++
			stack = append(stack, n)
			onStack[n] = true
			callStack = append(callStack, frame{node: n, nbrs: g.Neighbors(n)})
		}
		push(root)
		for len(callStack) > 0 {
			f := &callStack[len(callStack)-1]
			if f.i < len(f.nbrs) {
				nb := f.nbrs[f.i]
				f.i++
				if _, ok := index[nb]; !ok {
					push(nb)
				} else if onStack[nb] {
					if index[nb] < low[f.node] {
						low[f.node] = index[nb]
					}
				}
				continue
			}
			// f done: pop and propagate lowlink.
			n := f.node
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				parent := &callStack[len(callStack)-1]
				if low[n] < low[parent.node] {
					low[parent.node] = low[n]
				}
			}
			if low[n] == index[n] {
				var comp []string
				for {
					top := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[top] = false
					comp = append(comp, top)
					if top == n {
						break
					}
				}
				sort.Strings(comp)
				comps = append(comps, comp)
			}
		}
	}
	sort.Slice(comps, func(i, j int) bool {
		if len(comps[i]) != len(comps[j]) {
			return len(comps[i]) > len(comps[j])
		}
		return comps[i][0] < comps[j][0]
	})
	return comps
}

// HasCycle reports whether a directed graph contains a directed cycle, or an
// undirected graph contains any cycle.
func (g *Graph) HasCycle() bool {
	if g.directed {
		for _, c := range g.StronglyConnectedComponents() {
			if len(c) > 1 {
				return true
			}
		}
		// Self-loops are 1-node SCCs but still cycles.
		for _, k := range g.edgeOrder {
			if k.U == k.V {
				return true
			}
		}
		return false
	}
	// Undirected: cycle exists iff edges >= nodes - components.
	return g.NumEdges() > g.NumNodes()-len(g.ConnectedComponents())
}

// TopologicalSort returns a topological order of a directed acyclic graph
// (Kahn's algorithm with lexicographic tie-breaking) or an error on cycles.
func (g *Graph) TopologicalSort() ([]string, error) {
	if !g.directed {
		return nil, fmt.Errorf("graph: topological sort requires a directed graph")
	}
	n := len(g.nodeOrder)
	indeg := make([]int, n)
	var ready []string
	for i := 0; i < n; i++ {
		indeg[i] = len(g.pred[i])
		if indeg[i] == 0 {
			ready = append(ready, g.nodeOrder[i])
		}
	}
	sort.Strings(ready)
	var order []string
	for len(ready) > 0 {
		id := ready[0]
		ready = ready[1:]
		order = append(order, id)
		var newly []string
		for _, nbi := range g.succ[g.nodeIdx[id]] {
			indeg[nbi]--
			if indeg[nbi] == 0 {
				newly = append(newly, g.nodeOrder[nbi])
			}
		}
		sort.Strings(newly)
		ready = mergeSorted(ready, newly)
	}
	if len(order) != n {
		return nil, fmt.Errorf("graph: cycle detected, topological sort impossible")
	}
	return order, nil
}

func mergeSorted(a, b []string) []string {
	out := make([]string, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Density returns the graph density in [0,1]: e/(n*(n-1)) for directed
// graphs and 2e/(n*(n-1)) for undirected graphs.
func (g *Graph) Density() float64 {
	n := float64(g.NumNodes())
	if n <= 1 {
		return 0
	}
	e := float64(g.NumEdges())
	if g.directed {
		return e / (n * (n - 1))
	}
	return 2 * e / (n * (n - 1))
}

// IsolatedNodes returns nodes with zero degree, sorted.
func (g *Graph) IsolatedNodes() []string {
	var out []string
	for i, id := range g.nodeOrder {
		if len(g.succ[i]) == 0 && len(g.pred[i]) == 0 {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// SelfLoops returns edges whose endpoints coincide, in insertion order.
func (g *Graph) SelfLoops() []Edge {
	var out []Edge
	for _, k := range g.edgeOrder {
		if k.U == k.V {
			out = append(out, Edge{U: k.U, V: k.V, Attrs: g.edges[k]})
		}
	}
	return out
}

// Diameter returns the longest shortest-path length over all reachable node
// pairs (hop metric). Returns 0 for graphs with fewer than two nodes. Pairs
// with no path are ignored; if no pair is connected the result is 0.
func (g *Graph) Diameter() int {
	n := len(g.nodeOrder)
	best := int32(0)
	dist := make([]int32, n)
	queue := make([]int32, 0, n)
	for src := 0; src < n; src++ {
		g.bfsDistFrom(int32(src), g.succ, dist, &queue)
		for _, d := range dist {
			if d > best {
				best = d
			}
		}
	}
	return int(best)
}

// bfsDistFrom fills dist with hop counts from src over the given adjacency
// (-1 marks unreachable nodes), reusing the caller's queue buffer.
func (g *Graph) bfsDistFrom(src int32, adj [][]int32, dist []int32, queue *[]int32) {
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	q := append((*queue)[:0], src)
	for head := 0; head < len(q); head++ {
		cur := q[head]
		for _, nb := range adj[cur] {
			if dist[nb] < 0 {
				dist[nb] = dist[cur] + 1
				q = append(q, nb)
			}
		}
	}
	*queue = q
}

// AverageShortestPathLength returns the mean hop distance over all ordered
// reachable pairs (excluding self-pairs). Returns 0 when no pair is
// reachable.
func (g *Graph) AverageShortestPathLength() float64 {
	n := len(g.nodeOrder)
	total, count := 0, 0
	dist := make([]int32, n)
	queue := make([]int32, 0, n)
	for src := 0; src < n; src++ {
		g.bfsDistFrom(int32(src), g.succ, dist, &queue)
		for i, d := range dist {
			if i == src || d < 0 {
				continue
			}
			total += int(d)
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return float64(total) / float64(count)
}

// WeightedDegree sums the named numeric edge attribute over all edges
// incident to id (both directions in a directed graph). Missing attributes
// count as 0; non-numeric attributes are an error.
func (g *Graph) WeightedDegree(id, attr string) (float64, error) {
	if !g.HasNode(id) {
		return 0, fmt.Errorf("graph: node %q does not exist", id)
	}
	total := 0.0
	for _, k := range g.edgeOrder {
		if k.U != id && k.V != id {
			continue
		}
		raw, ok := g.edges[k][attr]
		if !ok {
			continue
		}
		f, ok := ToFloat(raw)
		if !ok {
			return 0, fmt.Errorf("graph: edge (%q,%q) attribute %q is not numeric", k.U, k.V, attr)
		}
		total += f
		if !g.directed && k.U == id && k.V == id {
			total += f // undirected self-loop counts twice
		}
	}
	return total, nil
}

// MaxBy returns the node maximizing fn, breaking ties by node ID, and the
// maximum value. ok is false for an empty graph.
func (g *Graph) MaxBy(fn func(id string) float64) (node string, value float64, ok bool) {
	value = math.Inf(-1)
	for _, n := range g.nodeOrder {
		v := fn(n)
		if !ok || v > value || (v == value && n < node) {
			node, value, ok = n, v, true
		}
	}
	return node, value, ok
}

package graph

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func buildLine(t *testing.T, directed bool, n int) *Graph {
	t.Helper()
	var g *Graph
	if directed {
		g = NewDirected()
	} else {
		g = New()
	}
	for i := 0; i < n-1; i++ {
		g.AddEdge(fmt.Sprintf("n%02d", i), fmt.Sprintf("n%02d", i+1), Attrs{"w": i + 1})
	}
	return g
}

func TestAddNodeIdempotentMerge(t *testing.T) {
	g := New()
	g.AddNode("a", Attrs{"x": 1})
	g.AddNode("a", Attrs{"y": 2})
	if g.NumNodes() != 1 {
		t.Fatalf("NumNodes = %d, want 1", g.NumNodes())
	}
	a := g.NodeAttrs("a")
	if a["x"] != int64(1) || a["y"] != int64(2) {
		t.Fatalf("attrs not merged: %v", a)
	}
}

func TestAddEdgeCreatesEndpoints(t *testing.T) {
	g := NewDirected()
	g.AddEdge("u", "v", Attrs{"bytes": 100})
	if !g.HasNode("u") || !g.HasNode("v") {
		t.Fatal("endpoints not auto-created")
	}
	if !g.HasEdge("u", "v") {
		t.Fatal("edge missing")
	}
	if g.HasEdge("v", "u") {
		t.Fatal("directed graph should not have reverse edge")
	}
}

func TestUndirectedEdgeSymmetric(t *testing.T) {
	g := New()
	g.AddEdge("b", "a", Attrs{"w": 3})
	if !g.HasEdge("a", "b") || !g.HasEdge("b", "a") {
		t.Fatal("undirected edge should match both orders")
	}
	if got := g.EdgeAttrs("a", "b")["w"]; got != int64(3) {
		t.Fatalf("attrs via reversed key = %v", got)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestRemoveNodeRemovesIncidentEdges(t *testing.T) {
	g := New()
	g.AddEdge("a", "b", nil)
	g.AddEdge("b", "c", nil)
	g.AddEdge("a", "c", nil)
	if err := g.RemoveNode("b"); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Fatalf("after removal: %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if g.HasEdge("a", "b") || g.HasEdge("b", "c") {
		t.Fatal("incident edges not removed")
	}
}

func TestRemoveMissingNodeErrors(t *testing.T) {
	g := New()
	if err := g.RemoveNode("ghost"); err == nil {
		t.Fatal("expected error removing absent node")
	}
	if err := g.RemoveEdge("x", "y"); err == nil {
		t.Fatal("expected error removing absent edge")
	}
}

func TestSetNodeAttrMissingNode(t *testing.T) {
	g := New()
	if err := g.SetNodeAttr("ghost", "k", 1); err == nil {
		t.Fatal("expected error on imaginary node")
	}
	g.AddNode("real", nil)
	if err := g.SetNodeAttr("real", "k", 1); err != nil {
		t.Fatal(err)
	}
}

func TestDegreeDirectedVsUndirected(t *testing.T) {
	d := NewDirected()
	d.AddEdge("a", "b", nil)
	d.AddEdge("c", "a", nil)
	if got := d.Degree("a"); got != 2 {
		t.Fatalf("directed total degree = %d, want 2", got)
	}
	if d.InDegree("a") != 1 || d.OutDegree("a") != 1 {
		t.Fatalf("in/out = %d/%d, want 1/1", d.InDegree("a"), d.OutDegree("a"))
	}
	u := New()
	u.AddEdge("a", "b", nil)
	u.AddEdge("a", "c", nil)
	if got := u.Degree("a"); got != 2 {
		t.Fatalf("undirected degree = %d, want 2", got)
	}
}

func TestSelfLoopDegree(t *testing.T) {
	u := New()
	u.AddEdge("a", "a", nil)
	if got := u.Degree("a"); got != 2 {
		t.Fatalf("undirected self-loop degree = %d, want 2", got)
	}
	d := NewDirected()
	d.AddEdge("a", "a", nil)
	if got := d.Degree("a"); got != 2 {
		t.Fatalf("directed self-loop degree = %d, want 2 (1 in + 1 out)", got)
	}
}

func TestBFSOrderAndReachability(t *testing.T) {
	g := buildLine(t, true, 5)
	got := g.BFS("n00")
	want := []string{"n00", "n01", "n02", "n03", "n04"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("BFS = %v, want %v", got, want)
	}
	if got := g.BFS("n04"); len(got) != 1 {
		t.Fatalf("BFS from sink = %v", got)
	}
	if g.BFS("ghost") != nil {
		t.Fatal("BFS from missing node should be nil")
	}
}

func TestDFSVisitsAllReachable(t *testing.T) {
	g := New()
	g.AddEdge("a", "b", nil)
	g.AddEdge("a", "c", nil)
	g.AddEdge("c", "d", nil)
	got := g.DFS("a")
	if len(got) != 4 || got[0] != "a" {
		t.Fatalf("DFS = %v", got)
	}
}

func TestShortestPathAndHops(t *testing.T) {
	g := buildLine(t, false, 6)
	p, err := g.ShortestPath("n00", "n05")
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 6 {
		t.Fatalf("path = %v", p)
	}
	h, err := g.HopCount("n00", "n05")
	if err != nil || h != 5 {
		t.Fatalf("hops = %d err=%v, want 5", h, err)
	}
	if _, err := g.ShortestPath("n00", "ghost"); err == nil {
		t.Fatal("expected missing-node error")
	}
	g2 := New()
	g2.AddNode("x", nil)
	g2.AddNode("y", nil)
	if _, err := g2.ShortestPath("x", "y"); err == nil {
		t.Fatal("expected no-path error")
	}
}

func TestShortestPathSelf(t *testing.T) {
	g := New()
	g.AddNode("a", nil)
	p, err := g.ShortestPath("a", "a")
	if err != nil || len(p) != 1 {
		t.Fatalf("self path = %v err=%v", p, err)
	}
}

func TestDijkstraPrefersLightPath(t *testing.T) {
	g := NewDirected()
	g.AddEdge("s", "t", Attrs{"w": 10})
	g.AddEdge("s", "m", Attrs{"w": 1})
	g.AddEdge("m", "t", Attrs{"w": 2})
	p, cost, err := g.DijkstraPath("s", "t", "w")
	if err != nil {
		t.Fatal(err)
	}
	if cost != 3 || len(p) != 3 {
		t.Fatalf("path=%v cost=%v", p, cost)
	}
}

func TestDijkstraMissingWeightDefaultsToOne(t *testing.T) {
	g := New()
	g.AddEdge("a", "b", nil)
	g.AddEdge("b", "c", nil)
	_, cost, err := g.DijkstraPath("a", "c", "w")
	if err != nil || cost != 2 {
		t.Fatalf("cost=%v err=%v", cost, err)
	}
}

func TestDijkstraNegativeWeightRejected(t *testing.T) {
	g := New()
	g.AddEdge("a", "b", Attrs{"w": -1})
	if _, _, err := g.DijkstraPath("a", "b", "w"); err == nil {
		t.Fatal("expected negative-weight error")
	}
}

func TestConnectedComponents(t *testing.T) {
	g := New()
	g.AddEdge("a", "b", nil)
	g.AddEdge("c", "d", nil)
	g.AddEdge("d", "e", nil)
	g.AddNode("lone", nil)
	comps := g.ConnectedComponents()
	if len(comps) != 3 {
		t.Fatalf("components = %v", comps)
	}
	if len(comps[0]) != 3 { // largest first
		t.Fatalf("largest component = %v", comps[0])
	}
}

func TestConnectedComponentsIgnoreDirection(t *testing.T) {
	g := NewDirected()
	g.AddEdge("a", "b", nil)
	g.AddEdge("c", "b", nil) // b has two in-edges; still one weak component
	comps := g.ConnectedComponents()
	if len(comps) != 1 || len(comps[0]) != 3 {
		t.Fatalf("weak components = %v", comps)
	}
}

func TestStronglyConnectedComponents(t *testing.T) {
	g := NewDirected()
	g.AddEdge("a", "b", nil)
	g.AddEdge("b", "c", nil)
	g.AddEdge("c", "a", nil)
	g.AddEdge("c", "d", nil)
	sccs := g.StronglyConnectedComponents()
	if len(sccs) != 2 {
		t.Fatalf("sccs = %v", sccs)
	}
	if !reflect.DeepEqual(sccs[0], []string{"a", "b", "c"}) {
		t.Fatalf("big scc = %v", sccs[0])
	}
}

func TestHasCycle(t *testing.T) {
	acyclic := NewDirected()
	acyclic.AddEdge("a", "b", nil)
	acyclic.AddEdge("b", "c", nil)
	if acyclic.HasCycle() {
		t.Fatal("DAG misreported as cyclic")
	}
	cyclic := NewDirected()
	cyclic.AddEdge("a", "b", nil)
	cyclic.AddEdge("b", "a", nil)
	if !cyclic.HasCycle() {
		t.Fatal("2-cycle not detected")
	}
	selfloop := NewDirected()
	selfloop.AddEdge("a", "a", nil)
	if !selfloop.HasCycle() {
		t.Fatal("self-loop not detected as cycle")
	}
	tree := New()
	tree.AddEdge("a", "b", nil)
	tree.AddEdge("a", "c", nil)
	if tree.HasCycle() {
		t.Fatal("tree misreported as cyclic")
	}
	triangle := New()
	triangle.AddEdge("a", "b", nil)
	triangle.AddEdge("b", "c", nil)
	triangle.AddEdge("c", "a", nil)
	if !triangle.HasCycle() {
		t.Fatal("triangle not detected")
	}
}

func TestTopologicalSort(t *testing.T) {
	g := NewDirected()
	g.AddEdge("b", "d", nil)
	g.AddEdge("a", "b", nil)
	g.AddEdge("a", "c", nil)
	g.AddEdge("c", "d", nil)
	order, err := g.TopologicalSort()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, n := range order {
		pos[n] = i
	}
	for _, e := range g.Edges() {
		if pos[e.U] >= pos[e.V] {
			t.Fatalf("order violates edge %s->%s: %v", e.U, e.V, order)
		}
	}
	cyc := NewDirected()
	cyc.AddEdge("x", "y", nil)
	cyc.AddEdge("y", "x", nil)
	if _, err := cyc.TopologicalSort(); err == nil {
		t.Fatal("expected cycle error")
	}
}

func TestSubgraphInduced(t *testing.T) {
	g := New()
	g.AddEdge("a", "b", Attrs{"w": 1})
	g.AddEdge("b", "c", Attrs{"w": 2})
	g.AddEdge("c", "a", Attrs{"w": 3})
	s := g.Subgraph([]string{"a", "b", "ghost"})
	if s.NumNodes() != 2 || s.NumEdges() != 1 {
		t.Fatalf("subgraph = %v", s)
	}
	if s.EdgeAttrs("a", "b")["w"] != int64(1) {
		t.Fatal("subgraph lost edge attrs")
	}
	// Mutating the subgraph must not affect the original.
	s.AddNode("z", nil)
	if g.HasNode("z") {
		t.Fatal("subgraph mutation leaked")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := New()
	g.AddEdge("a", "b", Attrs{"w": 1})
	c := g.Clone()
	c.AddEdge("b", "c", nil)
	if err := c.SetNodeAttr("a", "color", "red"); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatal("clone edge mutation leaked")
	}
	if _, ok := g.NodeAttrs("a")["color"]; ok {
		t.Fatal("clone attr mutation leaked")
	}
	if !Equal(g, g.Clone()) {
		t.Fatal("clone should equal original")
	}
}

func TestReverse(t *testing.T) {
	g := NewDirected()
	g.AddEdge("a", "b", Attrs{"w": 7})
	r := g.Reverse()
	if !r.HasEdge("b", "a") || r.HasEdge("a", "b") {
		t.Fatal("reverse wrong")
	}
	if r.EdgeAttrs("b", "a")["w"] != int64(7) {
		t.Fatal("reverse lost attrs")
	}
}

func TestDensity(t *testing.T) {
	g := New()
	g.AddEdge("a", "b", nil)
	g.AddEdge("b", "c", nil)
	g.AddEdge("c", "a", nil)
	if d := g.Density(); d != 1.0 {
		t.Fatalf("triangle density = %v, want 1", d)
	}
	d := NewDirected()
	d.AddEdge("a", "b", nil)
	if got := d.Density(); got != 0.5 {
		t.Fatalf("directed density = %v, want 0.5", got)
	}
	empty := New()
	if empty.Density() != 0 {
		t.Fatal("empty density should be 0")
	}
}

func TestIsolatedNodesAndSelfLoops(t *testing.T) {
	g := New()
	g.AddNode("alone", nil)
	g.AddEdge("a", "b", nil)
	g.AddEdge("c", "c", nil)
	if got := g.IsolatedNodes(); !reflect.DeepEqual(got, []string{"alone"}) {
		t.Fatalf("isolated = %v", got)
	}
	if loops := g.SelfLoops(); len(loops) != 1 || loops[0].U != "c" {
		t.Fatalf("self loops = %v", loops)
	}
}

func TestDiameterAndAvgPath(t *testing.T) {
	g := buildLine(t, false, 4) // path of 4 nodes, diameter 3
	if d := g.Diameter(); d != 3 {
		t.Fatalf("diameter = %d, want 3", d)
	}
	// Avg over ordered pairs of a 2-node line = 1.
	g2 := buildLine(t, false, 2)
	if a := g2.AverageShortestPathLength(); a != 1 {
		t.Fatalf("avg = %v, want 1", a)
	}
}

func TestWeightedDegree(t *testing.T) {
	g := NewDirected()
	g.AddEdge("a", "b", Attrs{"bytes": 100})
	g.AddEdge("c", "a", Attrs{"bytes": 50})
	g.AddEdge("a", "d", nil) // missing attr counts 0
	got, err := g.WeightedDegree("a", "bytes")
	if err != nil || got != 150 {
		t.Fatalf("weighted degree = %v err=%v, want 150", got, err)
	}
	if _, err := g.WeightedDegree("ghost", "bytes"); err == nil {
		t.Fatal("expected error for missing node")
	}
	g.AddEdge("a", "e", Attrs{"bytes": "lots"})
	if _, err := g.WeightedDegree("a", "bytes"); err == nil {
		t.Fatal("expected error for non-numeric attr")
	}
}

func TestDegreeCentrality(t *testing.T) {
	g := New() // star: center degree 3, leaves 1, n-1 = 3
	g.AddEdge("c", "l1", nil)
	g.AddEdge("c", "l2", nil)
	g.AddEdge("c", "l3", nil)
	dc := g.DegreeCentrality()
	if dc["c"] != 1.0 {
		t.Fatalf("center centrality = %v", dc["c"])
	}
	if dc["l1"] != 1.0/3.0 {
		t.Fatalf("leaf centrality = %v", dc["l1"])
	}
}

func TestBetweennessCentralityPath(t *testing.T) {
	g := buildLine(t, false, 3) // middle node lies on the single s-t path
	bc := g.BetweennessCentrality(false)
	if bc["n01"] != 1 {
		t.Fatalf("middle betweenness = %v, want 1", bc["n01"])
	}
	if bc["n00"] != 0 || bc["n02"] != 0 {
		t.Fatalf("endpoints = %v", bc)
	}
	norm := g.BetweennessCentrality(true)
	if norm["n01"] != 1 { // (n-1)(n-2)/2 = 1 for n=3
		t.Fatalf("normalized middle = %v", norm["n01"])
	}
}

func TestClosenessCentrality(t *testing.T) {
	g := buildLine(t, false, 3)
	cc := g.ClosenessCentrality()
	if cc["n01"] <= cc["n00"] {
		t.Fatalf("middle should be most central: %v", cc)
	}
}

func TestPageRankSumsToOne(t *testing.T) {
	g := NewDirected()
	g.AddEdge("a", "b", nil)
	g.AddEdge("b", "c", nil)
	g.AddEdge("c", "a", nil)
	g.AddEdge("a", "c", nil)
	pr := g.PageRank(0.85, 100, 1e-9)
	sum := 0.0
	for _, v := range pr {
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("pagerank sum = %v", sum)
	}
	if pr["c"] <= pr["b"] {
		t.Fatalf("c has two in-edges, should outrank b: %v", pr)
	}
}

func TestClusteringCoefficient(t *testing.T) {
	g := New()
	// Triangle plus a pendant.
	g.AddEdge("a", "b", nil)
	g.AddEdge("b", "c", nil)
	g.AddEdge("c", "a", nil)
	g.AddEdge("a", "d", nil)
	cc := g.ClusteringCoefficient()
	if cc["b"] != 1 {
		t.Fatalf("b clustering = %v, want 1", cc["b"])
	}
	if cc["a"] != 1.0/3.0 {
		t.Fatalf("a clustering = %v, want 1/3", cc["a"])
	}
	if cc["d"] != 0 {
		t.Fatalf("pendant clustering = %v", cc["d"])
	}
	avg := g.AverageClustering()
	want := (1.0/3.0 + 1 + 1 + 0) / 4
	if diff := avg - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("avg clustering = %v, want %v", avg, want)
	}
}

func TestTopNByDegree(t *testing.T) {
	g := New()
	g.AddEdge("hub", "a", nil)
	g.AddEdge("hub", "b", nil)
	g.AddEdge("hub", "c", nil)
	g.AddEdge("a", "b", nil)
	top := g.TopNByDegree(2)
	if len(top) != 2 || top[0].Node != "hub" || top[0].Degree != 3 {
		t.Fatalf("top = %v", top)
	}
	if top[1].Node != "a" { // a and b both degree 2; tie broken by ID
		t.Fatalf("tie break = %v", top)
	}
	if got := g.TopNByDegree(99); len(got) != 4 {
		t.Fatalf("clamped top = %v", got)
	}
}

func TestMaxBy(t *testing.T) {
	g := New()
	g.AddNode("a", Attrs{"v": 5})
	g.AddNode("b", Attrs{"v": 9})
	g.AddNode("c", Attrs{"v": 9})
	n, v, ok := g.MaxBy(func(id string) float64 {
		f, _ := ToFloat(g.NodeAttrs(id)["v"])
		return f
	})
	if !ok || n != "b" || v != 9 {
		t.Fatalf("MaxBy = %v %v %v", n, v, ok)
	}
	empty := New()
	if _, _, ok := empty.MaxBy(func(string) float64 { return 0 }); ok {
		t.Fatal("MaxBy on empty should report !ok")
	}
}

func TestKMeans1D(t *testing.T) {
	vals := []float64{1, 2, 3, 100, 101, 102, 1000, 1001}
	got := KMeans1D(vals, 3, 50)
	if len(got) != len(vals) {
		t.Fatalf("len = %d", len(got))
	}
	// First three in cluster 0, middle in 1, last two in 2.
	for i := 0; i < 3; i++ {
		if got[i] != 0 {
			t.Fatalf("assign = %v", got)
		}
	}
	for i := 3; i < 6; i++ {
		if got[i] != 1 {
			t.Fatalf("assign = %v", got)
		}
	}
	for i := 6; i < 8; i++ {
		if got[i] != 2 {
			t.Fatalf("assign = %v", got)
		}
	}
	if KMeans1D(nil, 3, 10) != nil {
		t.Fatal("empty input should yield nil")
	}
	one := KMeans1D([]float64{5}, 3, 10)
	if len(one) != 1 || one[0] != 0 {
		t.Fatalf("single value = %v", one)
	}
}

func TestClusterNodesBy(t *testing.T) {
	g := New()
	for i := 0; i < 10; i++ {
		g.AddNode(fmt.Sprintf("n%d", i), Attrs{"v": i * i * 10})
	}
	cl := g.ClusterNodesBy(3, func(id string) float64 {
		f, _ := ToFloat(g.NodeAttrs(id)["v"])
		return f
	})
	if len(cl) != 10 {
		t.Fatalf("clusters = %v", cl)
	}
	seen := map[int]bool{}
	for _, c := range cl {
		if c < 0 || c > 2 {
			t.Fatalf("cluster index out of range: %v", cl)
		}
		seen[c] = true
	}
	if len(seen) != 3 {
		t.Fatalf("expected all 3 clusters used: %v", cl)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := NewDirected()
	g.GraphAttrs()["name"] = "test"
	g.AddNode("a", Attrs{"ip": "10.0.0.1", "load": 0.5})
	g.AddEdge("a", "b", Attrs{"bytes": 1024, "proto": "tcp"})
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var back Graph
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !Equal(g, &back) {
		t.Fatalf("round trip diff: %s", Diff(g, &back))
	}
}

func TestJSONRejectsBadEntries(t *testing.T) {
	var g Graph
	if err := json.Unmarshal([]byte(`{"nodes":[{"noid":1}],"links":[]}`), &g); err == nil {
		t.Fatal("expected error on node without id")
	}
	var g2 Graph
	if err := json.Unmarshal([]byte(`{"nodes":[],"links":[{"source":"a"}]}`), &g2); err == nil {
		t.Fatal("expected error on link without target")
	}
}

func TestEqualAndDiff(t *testing.T) {
	a := New()
	a.AddEdge("x", "y", Attrs{"w": 1})
	b := New()
	b.AddEdge("x", "y", Attrs{"w": 1})
	if !Equal(a, b) {
		t.Fatalf("diff: %s", Diff(a, b))
	}
	b.SetEdgeAttr("x", "y", "w", 2)
	if Equal(a, b) {
		t.Fatal("attr change not detected")
	}
	c := NewDirected()
	if Equal(a, c) {
		t.Fatal("directedness ignored")
	}
	d := New()
	d.AddEdge("x", "y", Attrs{"w": 1})
	d.AddNode("extra", nil)
	if s := Diff(a, d); s == "" {
		t.Fatal("extra node not reported")
	}
}

func TestValueEqualMixedNumerics(t *testing.T) {
	if !ValueEqual(int64(3), float64(3)) {
		t.Fatal("3 == 3.0 should hold")
	}
	if ValueEqual(int64(3), float64(3.5)) {
		t.Fatal("3 != 3.5")
	}
	if !ValueEqual([]any{1, "a"}, []any{int64(1), "a"}) {
		t.Fatal("list equality with normalization")
	}
	if !ValueEqual(map[string]any{"k": 1}, Attrs{"k": int64(1)}) {
		t.Fatal("map vs Attrs equality")
	}
	if ValueEqual(map[string]any{"k": 1}, map[string]any{"k": 1, "j": 2}) {
		t.Fatal("size mismatch should differ")
	}
}

func TestFingerprintStable(t *testing.T) {
	a := New()
	a.AddEdge("b", "a", Attrs{"w": 1})
	a.AddNode("c", Attrs{"tag": "t"})
	b := New()
	b.AddNode("c", Attrs{"tag": "t"})
	b.AddEdge("a", "b", Attrs{"w": 1})
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("fingerprint should be insertion-order independent")
	}
}

// --- property-based tests ---

func randomGraph(r *rand.Rand, directed bool, n, e int) *Graph {
	var g *Graph
	if directed {
		g = NewDirected()
	} else {
		g = New()
	}
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("n%03d", i), Attrs{"v": r.Intn(100)})
	}
	for i := 0; i < e; i++ {
		u := fmt.Sprintf("n%03d", r.Intn(n))
		v := fmt.Sprintf("n%03d", r.Intn(n))
		g.AddEdge(u, v, Attrs{"w": r.Intn(50) + 1})
	}
	return g
}

func TestPropDegreeSumEqualsTwiceEdges(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, false, 3+r.Intn(30), r.Intn(60))
		sum := 0
		for _, n := range g.Nodes() {
			sum += g.Degree(n)
		}
		return sum == 2*g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropDirectedInOutSums(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, true, 3+r.Intn(30), r.Intn(60))
		in, out := 0, 0
		for _, n := range g.Nodes() {
			in += g.InDegree(n)
			out += g.OutDegree(n)
		}
		return in == g.NumEdges() && out == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropCloneEqual(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, seed%2 == 0, 2+r.Intn(20), r.Intn(40))
		return Equal(g, g.Clone())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropJSONRoundTripEqual(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, seed%2 == 0, 2+r.Intn(15), r.Intn(30))
		data, err := json.Marshal(g)
		if err != nil {
			return false
		}
		var back Graph
		if err := json.Unmarshal(data, &back); err != nil {
			return false
		}
		return Equal(g, &back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropSubgraphIsInduced(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, false, 5+r.Intn(20), r.Intn(50))
		nodes := g.Nodes()
		keep := nodes[:len(nodes)/2]
		s := g.Subgraph(keep)
		// Every subgraph edge exists in g with both endpoints kept.
		kept := map[string]bool{}
		for _, n := range keep {
			kept[n] = true
		}
		for _, e := range s.Edges() {
			if !kept[e.U] || !kept[e.V] || !g.HasEdge(e.U, e.V) {
				return false
			}
		}
		// Every g edge with both endpoints kept appears in s.
		for _, e := range g.Edges() {
			if kept[e.U] && kept[e.V] && !s.HasEdge(e.U, e.V) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropComponentsPartitionNodes(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, seed%2 == 0, 2+r.Intn(25), r.Intn(30))
		seen := map[string]int{}
		for _, comp := range g.ConnectedComponents() {
			for _, n := range comp {
				seen[n]++
			}
		}
		if len(seen) != g.NumNodes() {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropReverseTwiceIsIdentity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, true, 2+r.Intn(20), r.Intn(40))
		return Equal(g, g.Reverse().Reverse())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropSCCRefinesWeakComponents(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, true, 3+r.Intn(20), r.Intn(40))
		// Each SCC must lie within one weak component.
		compOf := map[string]int{}
		for i, comp := range g.ConnectedComponents() {
			for _, n := range comp {
				compOf[n] = i
			}
		}
		for _, scc := range g.StronglyConnectedComponents() {
			for _, n := range scc[1:] {
				if compOf[n] != compOf[scc[0]] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropKMeansAssignsAll(t *testing.T) {
	f := func(raw []float64, kRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		for i, v := range raw {
			if v != v || v > 1e12 || v < -1e12 { // NaN/huge guard
				raw[i] = float64(i)
			}
		}
		k := int(kRaw%5) + 1
		got := KMeans1D(raw, k, 30)
		if len(got) != len(raw) {
			return false
		}
		for _, c := range got {
			if c < 0 || c >= k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropDijkstraNeverBeatenByBFSWeights(t *testing.T) {
	// With all weights equal to 1, Dijkstra's cost equals BFS hop count.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, false, 4+r.Intn(15), 5+r.Intn(30))
		nodes := g.Nodes()
		src, dst := nodes[0], nodes[len(nodes)-1]
		hops, err1 := g.HopCount(src, dst)
		_, cost, err2 := g.DijkstraPath(src, dst, "nonexistent")
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true
		}
		return float64(hops) == cost
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeUnionsNodesEdgesAndAttrs(t *testing.T) {
	a := NewDirected()
	a.AddNode("x", Attrs{"ip": "1.1.1.1", "role": "old"})
	a.AddEdge("x", "y", Attrs{"bytes": 1})
	b := NewDirected()
	b.AddNode("x", Attrs{"role": "new"})
	b.AddEdge("x", "y", Attrs{"bytes": 2, "packets": 3})
	b.AddEdge("y", "z", Attrs{"bytes": 9})
	a.Merge(b)
	if a.NumNodes() != 3 || a.NumEdges() != 2 {
		t.Fatalf("merged shape: %v", a)
	}
	if got := a.NodeAttrsView("x"); got["ip"] != "1.1.1.1" || got["role"] != "new" {
		t.Fatalf("merged node attrs: %v", got)
	}
	if got := a.EdgeAttrsView("x", "y"); got["bytes"] != int64(2) || got["packets"] != int64(3) {
		t.Fatalf("merged edge attrs: %v", got)
	}
	// Node/edge order must stay deterministic: existing first, then b's
	// additions in b's insertion order.
	if nodes := a.Nodes(); nodes[0] != "x" || nodes[1] != "y" || nodes[2] != "z" {
		t.Fatalf("merged node order: %v", nodes)
	}
}

func TestMergeFromFrozenMasterDoesNotDefeatCOW(t *testing.T) {
	master := NewDirected()
	master.AddEdge("a", "b", Attrs{"bytes": 7})
	master.Freeze()
	clone := master.Clone()

	dst := NewDirected()
	dst.Merge(master)
	dst.SetEdgeAttr("a", "b", "bytes", 100)
	if master.EdgeAttrsView("a", "b")["bytes"] != int64(7) {
		t.Fatal("merge target write leaked into the frozen master")
	}
	if clone.EdgeAttrsView("a", "b")["bytes"] != int64(7) {
		t.Fatal("merge target write leaked into a master clone")
	}
}

func TestFreezeIsIncremental(t *testing.T) {
	g := NewDirected()
	g.AddEdge("a", "b", Attrs{"bytes": 1})
	g.Freeze()
	c1 := g.Clone()

	// Extend the frozen master with a new batch, then re-freeze.
	g.AddEdge("b", "c", Attrs{"bytes": 2})
	g.AddNode("d", Attrs{"ip": "10.0.0.1"})
	g.Freeze()
	c2 := g.Clone()

	if c1.NumEdges() != 1 || c2.NumEdges() != 2 || c2.NumNodes() != 4 {
		t.Fatalf("clone shapes: c1=%v c2=%v", c1, c2)
	}
	// Post-re-freeze clones must be isolated from master writes and from
	// each other.
	c2.SetEdgeAttr("b", "c", "bytes", 99)
	if g.EdgeAttrsView("b", "c")["bytes"] != int64(2) {
		t.Fatal("clone write leaked into the re-frozen master")
	}
	g.SetNodeAttr("d", "ip", "10.0.0.2")
	if c2.NodeAttrsView("d")["ip"] != "10.0.0.1" {
		t.Fatal("master write leaked into a clone")
	}
	if !Equal(c1, func() *Graph { h := NewDirected(); h.AddEdge("a", "b", Attrs{"bytes": 1}); return h }()) {
		t.Fatal("pre-extension clone changed shape")
	}
}

package graph

import (
	"fmt"
	"sort"
	"strings"
)

// DOTOptions controls Graphviz rendering.
type DOTOptions struct {
	Name string // graph name (default "G")
	// ColorAttr names a node attribute whose string value becomes the
	// node's fill color (the paper's Figure 1 color-by-prefix view uses
	// the "color" attribute).
	ColorAttr string
	// LabelAttr names a node attribute appended to the node label.
	LabelAttr string
	// EdgeLabelAttr names an edge attribute rendered as the edge label.
	EdgeLabelAttr string
}

// DOT renders the graph in Graphviz DOT format with deterministic ordering
// (nodes and edges sorted), suitable for `dot -Tsvg`.
func (g *Graph) DOT(opts DOTOptions) string {
	name := opts.Name
	if name == "" {
		name = "G"
	}
	var sb strings.Builder
	kind, arrow := "graph", " -- "
	if g.directed {
		kind, arrow = "digraph", " -> "
	}
	fmt.Fprintf(&sb, "%s %s {\n", kind, name)
	sb.WriteString("  node [shape=ellipse, style=filled, fillcolor=white];\n")

	nodes := g.Nodes()
	sort.Strings(nodes)
	for _, n := range nodes {
		attrs := g.nodeViewByID(n)
		var parts []string
		label := dotQuote(n)
		if opts.LabelAttr != "" {
			if v, ok := attrs[opts.LabelAttr]; ok {
				// \n is a DOT escape (line break inside the node label).
				label = dotQuote(fmt.Sprintf("%s\\n%v", n, v))
			}
		}
		parts = append(parts, "label="+label)
		if opts.ColorAttr != "" {
			if c, ok := attrs[opts.ColorAttr].(string); ok && c != "" {
				parts = append(parts, fmt.Sprintf("fillcolor=%q", c))
			}
		}
		fmt.Fprintf(&sb, "  %q [%s];\n", n, strings.Join(parts, ", "))
	}

	keys := make([]EdgeKey, 0, len(g.edges))
	for k := range g.edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].U != keys[j].U {
			return keys[i].U < keys[j].U
		}
		return keys[i].V < keys[j].V
	})
	for _, k := range keys {
		attr := ""
		if opts.EdgeLabelAttr != "" {
			if v, ok := g.edges[k][opts.EdgeLabelAttr]; ok {
				attr = fmt.Sprintf(" [label=%q]", fmt.Sprintf("%v", v))
			}
		}
		fmt.Fprintf(&sb, "  %q%s%q%s;\n", k.U, arrow, k.V, attr)
	}
	sb.WriteString("}\n")
	return sb.String()
}

// dotQuote wraps s in DOT double quotes, escaping embedded quotes but
// preserving DOT escape sequences like \n.
func dotQuote(s string) string {
	return `"` + strings.ReplaceAll(s, `"`, `\"`) + `"`
}

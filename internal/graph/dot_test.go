package graph

import (
	"strings"
	"testing"
)

func TestDOTDirected(t *testing.T) {
	g := NewDirected()
	g.AddNode("a", Attrs{"color": "red", "ip": "10.0.0.1"})
	g.AddEdge("a", "b", Attrs{"bytes": 100})
	out := g.DOT(DOTOptions{ColorAttr: "color", LabelAttr: "ip", EdgeLabelAttr: "bytes"})
	for _, want := range []string{
		"digraph G {",
		`"a" -> "b" [label="100"];`,
		`fillcolor="red"`,
		`10.0.0.1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
}

func TestDOTUndirected(t *testing.T) {
	g := New()
	g.AddEdge("x", "y", nil)
	out := g.DOT(DOTOptions{Name: "net"})
	if !strings.Contains(out, "graph net {") || !strings.Contains(out, `"x" -- "y";`) {
		t.Fatalf("DOT:\n%s", out)
	}
}

func TestDOTDeterministic(t *testing.T) {
	a := New()
	a.AddEdge("b", "a", nil)
	a.AddNode("c", nil)
	b := New()
	b.AddNode("c", nil)
	b.AddEdge("a", "b", nil)
	if a.DOT(DOTOptions{}) != b.DOT(DOTOptions{}) {
		t.Fatal("DOT output should be insertion-order independent")
	}
}

func TestDOTNoColorWhenAbsent(t *testing.T) {
	g := New()
	g.AddNode("plain", nil)
	out := g.DOT(DOTOptions{ColorAttr: "color"})
	if strings.Contains(out, "fillcolor=\"") && !strings.Contains(out, "fillcolor=white") {
		t.Fatalf("unexpected fillcolor:\n%s", out)
	}
}

package malt

import (
	"strings"
	"testing"

	"repro/internal/graph"
)

func TestExampleScaleMatchesPaper(t *testing.T) {
	g := Generate(Config{}).Graph()
	if g.NumNodes() != 5493 {
		t.Fatalf("nodes = %d, want 5493 (paper's example MALT dataset)", g.NumNodes())
	}
	if g.NumEdges() != 6424 {
		t.Fatalf("edges = %d, want 6424", g.NumEdges())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{}).Graph()
	b := Generate(Config{}).Graph()
	if !graph.Equal(a, b) {
		t.Fatal("generation must be deterministic")
	}
}

func TestEntityKindCounts(t *testing.T) {
	top := Generate(Config{})
	counts := map[string]int{}
	for _, e := range top.Entities {
		counts[e.Kind]++
	}
	want := map[string]int{
		KindNetwork:      1,
		KindDatacenter:   4,
		KindChassis:      64,
		KindPacketSwitch: 448,
		KindPort:         4928,
		KindControlPoint: 48,
	}
	for k, w := range want {
		if counts[k] != w {
			t.Errorf("%s count = %d, want %d", k, counts[k], w)
		}
	}
}

func TestContainmentHierarchy(t *testing.T) {
	top := Generate(Config{})
	g := top.Graph()
	// Every port has exactly one containing switch.
	for _, e := range top.Entities {
		if e.Kind != KindPort {
			continue
		}
		preds := g.Predecessors(e.ID)
		if len(preds) != 1 {
			t.Fatalf("port %s has %d parents", e.ID, len(preds))
		}
		if g.NodeAttrs(preds[0])["kind"] != KindPacketSwitch {
			t.Fatalf("port %s parent is %v", e.ID, g.NodeAttrs(preds[0])["kind"])
		}
	}
	// Chassis attributes present.
	for _, e := range top.Entities {
		if e.Kind == KindChassis {
			if _, ok := e.Attrs["capacity"].(int64); !ok {
				t.Fatalf("chassis %s missing capacity", e.ID)
			}
		}
	}
}

func TestControlEdges(t *testing.T) {
	top := Generate(Config{})
	controls := 0
	for _, r := range top.Relationships {
		if r.Kind == RelControls {
			controls++
			if !strings.HasPrefix(r.From, "cp.") || !strings.HasPrefix(r.To, "ps.") {
				t.Fatalf("controls edge %s -> %s", r.From, r.To)
			}
		}
	}
	if controls != ExampleConfig.ExtraControlLinks {
		t.Fatalf("controls edges = %d, want %d", controls, ExampleConfig.ExtraControlLinks)
	}
}

func TestFramesSchema(t *testing.T) {
	top := Generate(Config{Datacenters: 1, ChassisPerDC: 2, SwitchesPerCh: 2, PortsPerSwitch: 2, ControlPoints: 2, Seed: 3, ExtraControlLinks: 2})
	nodes, edges := top.Frames()
	if nodes.NumRows() != len(top.Entities) || edges.NumRows() != len(top.Relationships) {
		t.Fatalf("frames %d/%d vs topology %d/%d", nodes.NumRows(), edges.NumRows(), len(top.Entities), len(top.Relationships))
	}
	for _, col := range []string{"id", "kind", "name", "capacity"} {
		if !nodes.HasColumn(col) {
			t.Errorf("nodes frame missing %s", col)
		}
	}
}

func TestDatabaseQueries(t *testing.T) {
	top := Generate(Config{})
	db := top.Database()
	f, err := db.Query("SELECT COUNT(*) AS n FROM entities WHERE kind = 'EK_PACKET_SWITCH'")
	if err != nil || f.Row(0)["n"] != int64(448) {
		t.Fatalf("switch count = %v err=%v", f, err)
	}
	f, err = db.Query("SELECT COUNT(*) AS n FROM relationships WHERE relation = 'RK_CONTROLS'")
	if err != nil || f.Row(0)["n"] != int64(980) {
		t.Fatalf("controls count = %v err=%v", f, err)
	}
}

func TestWrapperDescriptions(t *testing.T) {
	w := NewWrapper(Generate(Config{}))
	for _, backend := range []string{"networkx", "pandas", "sql"} {
		d := w.Describe(backend)
		if !strings.Contains(d, "RK_CONTAINS") {
			t.Errorf("%s description missing relation kinds", backend)
		}
	}
}

func TestCustomConfig(t *testing.T) {
	top := Generate(Config{Datacenters: 2, ChassisPerDC: 3, SwitchesPerCh: 2, PortsPerSwitch: 4, ControlPoints: 3, Seed: 11, ExtraControlLinks: 5})
	g := top.Graph()
	// 1 net + 2 dc + 6 ch + 12 sw + 48 ports + 3 cp = 72
	if g.NumNodes() != 72 {
		t.Fatalf("nodes = %d, want 72", g.NumNodes())
	}
	// contains: 2 + 6 + 12 + 48 = 68, controls 5 → 73
	if g.NumEdges() != 73 {
		t.Fatalf("edges = %d, want 73", g.NumEdges())
	}
}

// Package malt implements the network lifecycle management application: a
// Multi-Abstraction-Layer Topology (MALT) entity-relationship model after
// Mogul et al. (NSDI 2020), plus a deterministic synthetic generator that
// reproduces the scale and schema of Google's example MALT dataset the
// paper evaluates on (5493 nodes, 6424 edges). Since the original dataset
// is external, the generator synthesizes an equivalent hierarchy: WAN →
// datacenters → chassis → packet switches → ports, with "contains" edges
// down the hierarchy and "controls" edges from control points, matching the
// entity kinds and relationship kinds the paper's queries exercise.
package malt

import (
	"fmt"
	"math/rand"

	"repro/internal/dataframe"
	"repro/internal/graph"
	"repro/internal/prompt"
	"repro/internal/sqldb"
)

// Entity kinds in the MALT model.
const (
	KindNetwork      = "EK_NETWORK"
	KindDatacenter   = "EK_DATACENTER"
	KindChassis      = "EK_CHASSIS"
	KindPacketSwitch = "EK_PACKET_SWITCH"
	KindPort         = "EK_PORT"
	KindControlPoint = "EK_CONTROL_POINT"
)

// Relationship kinds.
const (
	RelContains = "RK_CONTAINS"
	RelControls = "RK_CONTROLS"
)

// Entity is one MALT entity.
type Entity struct {
	ID    string
	Kind  string
	Attrs graph.Attrs
}

// Relationship is a directed typed edge between entities.
type Relationship struct {
	From, To string
	Kind     string
}

// Topology is a parsed MALT model.
type Topology struct {
	Entities      []Entity
	Relationships []Relationship
}

// Config controls synthetic MALT generation. The zero value is replaced by
// ExampleConfig.
type Config struct {
	Datacenters       int
	ChassisPerDC      int
	SwitchesPerCh     int
	PortsPerSwitch    int
	ControlPoints     int
	Seed              int64
	ExtraControlLinks int
}

// ExampleConfig reproduces the scale of the example MALT dataset the paper
// uses: 5493 nodes and 6424 edges.
//
// Node count: 1 network + 4 DCs + 64 chassis (16/DC) + 448 switches (7/ch)
// + 4928 ports (11/sw) + 48 control points = 5493.
// Edge count: contains edges 4+64+448+4928 = 5444 plus 48 control points
// controlling ~20 switches each ≈ 980 controls edges = 6424.
var ExampleConfig = Config{
	Datacenters:       4,
	ChassisPerDC:      16,
	SwitchesPerCh:     7,
	PortsPerSwitch:    11,
	ControlPoints:     48,
	Seed:              1039,
	ExtraControlLinks: 980,
}

// Generate synthesizes a MALT topology.
func Generate(cfg Config) *Topology {
	if cfg.Datacenters == 0 {
		cfg = ExampleConfig
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	t := &Topology{}
	addEntity := func(id, kind string, attrs graph.Attrs) {
		if attrs == nil {
			attrs = graph.Attrs{}
		}
		attrs["kind"] = kind
		t.Entities = append(t.Entities, Entity{ID: id, Kind: kind, Attrs: attrs})
	}
	rel := func(from, to, kind string) {
		t.Relationships = append(t.Relationships, Relationship{From: from, To: to, Kind: kind})
	}

	net := "net.wan1"
	addEntity(net, KindNetwork, graph.Attrs{"name": "wan1"})

	var switches []string
	for d := 0; d < cfg.Datacenters; d++ {
		dc := fmt.Sprintf("dc.ju%d", d+1)
		addEntity(dc, KindDatacenter, graph.Attrs{
			"name":   fmt.Sprintf("ju%d", d+1),
			"region": []string{"us-east", "us-west", "eu-west", "ap-south"}[d%4],
		})
		rel(net, dc, RelContains)
		for c := 0; c < cfg.ChassisPerDC; c++ {
			ch := fmt.Sprintf("ch.ju%d.a%d", d+1, c+1)
			addEntity(ch, KindChassis, graph.Attrs{
				"name":     fmt.Sprintf("ju%d.a%d", d+1, c+1),
				"capacity": int64(40 + 10*r.Intn(28)), // 40..310 Gbps
				"vendor":   []string{"acme", "borg", "cisco-like"}[r.Intn(3)],
			})
			rel(dc, ch, RelContains)
			for s := 0; s < cfg.SwitchesPerCh; s++ {
				sw := fmt.Sprintf("ps.ju%d.a%d.m1.s%dc1", d+1, c+1, s+1)
				addEntity(sw, KindPacketSwitch, graph.Attrs{
					"name":  fmt.Sprintf("ju%d.a%d.m1.s%dc1", d+1, c+1, s+1),
					"role":  []string{"spine", "leaf", "border"}[r.Intn(3)],
					"ports": int64(cfg.PortsPerSwitch),
				})
				rel(ch, sw, RelContains)
				switches = append(switches, sw)
				for p := 0; p < cfg.PortsPerSwitch; p++ {
					port := fmt.Sprintf("%s.p%d", sw, p+1)
					addEntity(port, KindPort, graph.Attrs{
						"name":        fmt.Sprintf("p%d", p+1),
						"speed_gbps":  int64([]int{10, 25, 40, 100}[r.Intn(4)]),
						"admin_state": []string{"up", "up", "up", "down"}[r.Intn(4)],
					})
					rel(sw, port, RelContains)
				}
			}
		}
	}
	// Control points and their controls edges.
	var cps []string
	for i := 0; i < cfg.ControlPoints; i++ {
		cp := fmt.Sprintf("cp.ctl%02d", i+1)
		addEntity(cp, KindControlPoint, graph.Attrs{"name": fmt.Sprintf("ctl%02d", i+1)})
		cps = append(cps, cp)
	}
	// Spread ExtraControlLinks controls edges round-robin over control
	// points, targeting distinct switches.
	if len(cps) > 0 && len(switches) > 0 {
		seen := map[[2]string]bool{}
		for added := 0; added < cfg.ExtraControlLinks; {
			cp := cps[added%len(cps)]
			sw := switches[r.Intn(len(switches))]
			key := [2]string{cp, sw}
			if seen[key] {
				continue
			}
			seen[key] = true
			rel(cp, sw, RelControls)
			added++
		}
	}
	return t
}

// Graph converts a topology into a directed attributed graph: one node per
// entity (attributes include "kind"), one edge per relationship with
// attribute "relation".
func (t *Topology) Graph() *graph.Graph {
	g := graph.NewDirected()
	g.GraphAttrs()["app"] = "malt"
	for _, e := range t.Entities {
		g.AddNode(e.ID, e.Attrs)
	}
	for _, r := range t.Relationships {
		g.AddEdge(r.From, r.To, graph.Attrs{"relation": r.Kind})
	}
	return g
}

// Frames converts a topology into node/edge dataframes. The node frame has
// (id, kind, name, capacity, role, speed_gbps, admin_state, region, vendor,
// ports) with nil for inapplicable columns; the edge frame has (src, dst,
// relation).
func (t *Topology) Frames() (nodes, edges *dataframe.Frame) {
	cols := []string{"id", "kind", "name", "capacity", "role", "speed_gbps", "admin_state", "region", "vendor", "ports"}
	nodes = dataframe.New(cols...)
	for _, e := range t.Entities {
		row := make([]any, len(cols))
		row[0] = e.ID
		for i, c := range cols[1:] {
			row[i+1] = e.Attrs[c]
		}
		nodes.AppendRow(row...)
	}
	edges = dataframe.New("src", "dst", "relation")
	for _, r := range t.Relationships {
		edges.AppendRow(r.From, r.To, r.Kind)
	}
	return nodes, edges
}

// Database converts a topology into relational tables "entities" and
// "relationships" for the SQL backend.
func (t *Topology) Database() *sqldb.DB {
	db := sqldb.NewDB()
	nodes, edges := t.Frames()
	db.CreateTable("entities", nodes)
	db.CreateTable("relationships", edges)
	return db
}

// Wrapper is the MALT application wrapper (framework box 1).
type Wrapper struct {
	T *Topology
}

// NewWrapper wraps t.
func NewWrapper(t *Topology) *Wrapper { return &Wrapper{T: t} }

// Name identifies the application.
func (w *Wrapper) Name() string { return "network lifecycle management (MALT)" }

// Graph returns the topology as a directed graph.
func (w *Wrapper) Graph() *graph.Graph { return w.T.Graph() }

// Describe returns the data-model description injected into prompts,
// specialized per backend.
func (w *Wrapper) Describe(backend string) string {
	common := "The data is a MALT (Multi-Abstraction-Layer Topology) model: a " +
		"directed graph of network entities. Every node has attribute \"kind\" " +
		"(one of EK_NETWORK, EK_DATACENTER, EK_CHASSIS, EK_PACKET_SWITCH, " +
		"EK_PORT, EK_CONTROL_POINT) and \"name\". Chassis nodes also have " +
		"integer \"capacity\" and string \"vendor\"; packet switches have " +
		"\"role\" and integer \"ports\"; ports have integer \"speed_gbps\" and " +
		"\"admin_state\". Edges have attribute \"relation\": RK_CONTAINS points " +
		"from container to contained entity, RK_CONTROLS from control point to " +
		"controlled switch. Entity ids are prefixed by kind: dc.*, ch.*, ps.*, " +
		"ps.<switch>.p<N> for ports, cp.*."
	networkx := " A variable `graph` is bound to the directed graph " +
		"with the methods nodes(), edges(), node(id), edge(u, v), " +
		"neighbors(id), predecessors(id), degree(id), subgraph(ids), " +
		"add/remove_node, add/remove_edge, set_node_attr and " +
		"topological_sort(). edges() yields objects with .src, .dst, .attrs."
	pandas := " Two dataframes are bound: `nodes_df` with columns " +
		"(id, kind, name, capacity, role, speed_gbps, admin_state, region, " +
		"vendor, ports) — inapplicable cells are nil — and `edges_df` with " +
		"columns (src, dst, relation)."
	sql := " A variable `db` is bound to a SQL database with " +
		"tables entities(id, kind, name, capacity, role, speed_gbps, " +
		"admin_state, region, vendor, ports) and relationships(src, dst, " +
		"relation)."
	switch backend {
	case "networkx":
		return common + networkx
	case "pandas":
		return common + pandas
	case "sql":
		return common + sql
	case "federated":
		return common + networkx + pandas + sql + prompt.FederatedPlannerDoc
	default:
		return common
	}
}

package prompt

import (
	"strings"
	"testing"
)

type fakeWrapper struct{}

func (fakeWrapper) Name() string { return "test app" }
func (fakeWrapper) Describe(backend string) string {
	switch backend {
	case BackendNetworkX:
		return "A variable `graph` is bound to the graph."
	case BackendPandas:
		return "Dataframes `nodes_df` and `edges_df` are bound."
	case BackendSQL:
		return "A variable `db` is bound to a SQL database."
	}
	return "generic"
}

func TestBuildCodePromptStructure(t *testing.T) {
	p := BuildCodePrompt(fakeWrapper{}, BackendNetworkX, "How many nodes?")
	for _, want := range []string{"test app", "Data model:", "User query: How many nodes?", "NQL", "return statement"} {
		if !strings.Contains(p, want) {
			t.Errorf("prompt missing %q", want)
		}
	}
}

func TestQueryOfRoundTrip(t *testing.T) {
	for _, q := range []string{"Count nodes.", "Remove all isolated nodes (nodes with no incoming or outgoing edges) from the network."} {
		p := BuildCodePrompt(fakeWrapper{}, BackendPandas, q)
		got, ok := QueryOf(p)
		if !ok || got != q {
			t.Errorf("QueryOf = %q ok=%v, want %q", got, ok, q)
		}
	}
	if _, ok := QueryOf("no marker here"); ok {
		t.Fatal("QueryOf on plain text should fail")
	}
}

func TestBackendOf(t *testing.T) {
	for _, backend := range Backends {
		p := BuildCodePrompt(fakeWrapper{}, backend, "q")
		got, ok := BackendOf(p)
		if !ok || got != backend {
			t.Errorf("BackendOf = %q ok=%v, want %q", got, ok, backend)
		}
	}
	straw := BuildStrawmanPrompt(fakeWrapper{}, `{"nodes":[]}`, "q")
	if _, ok := BackendOf(straw); ok {
		t.Fatal("strawman prompt should have no backend")
	}
}

func TestStrawmanPromptEmbedsData(t *testing.T) {
	p := BuildStrawmanPrompt(fakeWrapper{}, `{"nodes":[{"id":"a"}]}`, "Count nodes.")
	if !strings.Contains(p, `{"nodes":[{"id":"a"}]}`) {
		t.Fatal("graph JSON not embedded")
	}
	if q, ok := QueryOf(p); !ok || q != "Count nodes." {
		t.Fatalf("QueryOf = %q", q)
	}
}

func TestRepairPrompt(t *testing.T) {
	orig := BuildCodePrompt(fakeWrapper{}, BackendSQL, "q")
	rep := BuildRepairPrompt(orig, "bad code", "nql attribute error on line 1: boom")
	if !IsRepairPrompt(rep) {
		t.Fatal("repair prompt not detected")
	}
	if IsRepairPrompt(orig) {
		t.Fatal("original misdetected as repair")
	}
	for _, want := range []string{"bad code", "boom", "corrected program"} {
		if !strings.Contains(rep, want) {
			t.Errorf("repair prompt missing %q", want)
		}
	}
	// The embedded query survives.
	if q, ok := QueryOf(rep); !ok || q != "q" {
		t.Fatalf("QueryOf(repair) = %q", q)
	}
	// Backend detection survives.
	if b, ok := BackendOf(rep); !ok || b != BackendSQL {
		t.Fatalf("BackendOf(repair) = %q", b)
	}
}

func TestCodePromptGrowsWithoutData(t *testing.T) {
	// The code prompt must not embed network data — its length is
	// independent of graph size (the paper's scalability property).
	p1 := BuildCodePrompt(fakeWrapper{}, BackendNetworkX, "q")
	p2 := BuildCodePrompt(fakeWrapper{}, BackendNetworkX, "q")
	if p1 != p2 {
		t.Fatal("code prompt should be deterministic")
	}
	if strings.Contains(p1, "{\"nodes\"") {
		t.Fatal("code prompt must not contain graph JSON")
	}
}

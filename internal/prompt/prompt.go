// Package prompt implements the two-stage prompt generation framework of
// the paper (boxes 2 and 3 in Figure 2): an application prompt generator
// that combines the user query with the application wrapper's
// domain-specific context, and a general code-gen prompt generator that
// appends program-synthesis instructions (output language, libraries,
// answer conventions). Keeping the two stages separate is the paper's key
// architectural claim — either can evolve independently.
package prompt

import (
	"fmt"
	"strings"
)

// AppWrapper is the application wrapper interface (framework box 1): it
// names the application and describes its data model for a given backend.
type AppWrapper interface {
	Name() string
	Describe(backend string) string
}

// Backends supported by the code generator.
const (
	BackendNetworkX  = "networkx"
	BackendPandas    = "pandas"
	BackendSQL       = "sql"
	BackendFederated = "federated"
)

// Backends lists the paper's per-substrate code-generation backends in
// evaluation order (the Table 2-5 matrix).
var Backends = []string{BackendSQL, BackendPandas, BackendNetworkX}

// AllBackends additionally includes the federated backend, which binds all
// three substrates plus the cross-substrate query planner. It is evaluated
// by the parity harness rather than the paper's tables.
var AllBackends = []string{BackendSQL, BackendPandas, BackendNetworkX, BackendFederated}

// FederatedPlannerDoc describes the `fed` planner binding of the federated
// backend; application wrappers append it to their per-substrate data-model
// descriptions.
const FederatedPlannerDoc = " A variable `fed` is bound to a federated query planner " +
	"spanning every substrate. fed.scan(source, table) starts a logical plan " +
	"(sources: \"graph\" with tables nodes, edges, degree, pagerank, " +
	"components; \"frame\" with the dataframe tables; \"sql\" with the " +
	"database tables). Plans chain filter(col, op, value) with op one of " +
	"==, !=, <, <=, >, >=, contains, prefix; where(fn); project(cols...); " +
	"join(other_plan, left_key, right_key); agg(group_cols, [col, fn, name]...) " +
	"with fn one of count, sum, mean, min, max; sort(cols..., ascending); " +
	"limit(n); and execute with collect(), count(), cell(i, col), to_frame() " +
	"or explain(). Filters and projections are pushed down into each " +
	"substrate natively, and a single plan may join tables from different " +
	"substrates."

// codeGenInstructions is the general program-synthesis suffix (box 3),
// independent of the application.
const codeGenInstructions = `Write a complete NQL program that answers the query.
Rules:
- NQL is a small imperative language: let/if/else/for/while/func/return,
  lists [..], maps {..}, lambdas fn(x) => expr, and method calls obj.m(a).
- Use only the documented bindings and the standard builtins (len, range,
  sorted, sum, min, max, keys, values, push, split, join, contains, str,
  int, float, round, map, filter, unique, kmeans, print).
- End the program with a return statement carrying the answer. For pure
  manipulation tasks, perform the mutation and return nil.
- Do not fabricate attributes, columns or methods that are not documented.
Respond with only the program text.

Few-shot examples of query -> program:

Example 1. Query: "How many elements are in the collection?"
Program:
    return len(items)

Example 2. Query: "Sum the weight attribute over all records."
Program:
    let total = 0
    for r in records {
      total = total + r["weight"]
    }
    return total

Example 3. Query: "Group records by key and report the largest group."
Program:
    let groups = {}
    for r in records {
      let k = r["key"]
      if not contains(groups, k) { groups[k] = 0 }
      groups[k] = groups[k] + 1
    }
    let best = nil
    let bestn = -1
    for k, n in groups {
      if n > bestn { best = k bestn = n }
    }
    return [best, bestn]

Example 4. Query: "Mark every record whose value exceeds a threshold."
Program:
    for r in records {
      if r["value"] > threshold {
        r["flagged"] = true
      }
    }
    return nil

Checklist before you answer: verify every attribute you reference is in the
data model; verify every method you call is documented; verify the program
parses (balanced braces, complete expressions); verify the final statement
returns the value the query asks for, in the shape the query specifies
(list, map, single value); prefer deterministic ordering (sorted output)
whenever the query asks for lists.`

// BuildCodePrompt assembles the full prompt for a code-generation request:
// application context (box 2) + query + synthesis instructions (box 3).
func BuildCodePrompt(app AppWrapper, backend, query string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "You are assisting a network operator with %s.\n\n", app.Name())
	sb.WriteString("Data model:\n")
	sb.WriteString(app.Describe(backend))
	sb.WriteString("\n\nUser query: ")
	sb.WriteString(query)
	sb.WriteString("\n\n")
	sb.WriteString(codeGenInstructions)
	return sb.String()
}

// BuildStrawmanPrompt assembles the baseline prompt that inlines the whole
// network as JSON and asks the model to answer directly — the approach the
// paper shows fails on explainability, scalability and privacy.
func BuildStrawmanPrompt(app AppWrapper, graphJSON, query string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "You are assisting a network operator with %s.\n\n", app.Name())
	sb.WriteString("The complete network data in node-link JSON format:\n")
	sb.WriteString(graphJSON)
	sb.WriteString("\n\nUser query: ")
	sb.WriteString(query)
	sb.WriteString("\n\nAnswer the query directly and concisely. If the query asks for a " +
		"modification, output the full updated network JSON.")
	return sb.String()
}

// BuildRepairPrompt assembles the self-debug follow-up: the original
// prompt, the failing program and its error, asking for a corrected
// program (Chen et al.'s self-debugging loop, applied as in the paper's
// case study).
func BuildRepairPrompt(original, failedCode, errMsg string) string {
	var sb strings.Builder
	sb.WriteString(original)
	sb.WriteString("\n\nYour previous program:\n")
	sb.WriteString(failedCode)
	sb.WriteString("\n\nIt failed with error:\n")
	sb.WriteString(errMsg)
	sb.WriteString("\n\nPlease return a corrected program. Respond with only the program text.")
	return sb.String()
}

// QueryOf extracts the user query embedded in a prompt built by this
// package; ok is false when the marker is absent. The simulated LLM uses
// this to look up its generation catalog — a real LLM reads the same text.
func QueryOf(p string) (string, bool) {
	const marker = "User query: "
	i := strings.Index(p, marker)
	if i < 0 {
		return "", false
	}
	rest := p[i+len(marker):]
	if j := strings.Index(rest, "\n"); j >= 0 {
		rest = rest[:j]
	}
	return strings.TrimSpace(rest), true
}

// IsRepairPrompt reports whether p is a self-debug follow-up.
func IsRepairPrompt(p string) bool {
	return strings.Contains(p, "It failed with error:")
}

// BackendOf sniffs which backend a code prompt was built for by looking at
// the data-model section; ok is false for strawman prompts.
func BackendOf(p string) (string, bool) {
	switch {
	// The federated description also documents the per-substrate bindings,
	// so its marker must be checked first.
	case strings.Contains(p, "`fed` is bound"):
		return BackendFederated, true
	case strings.Contains(p, "`graph` is bound"):
		return BackendNetworkX, true
	case strings.Contains(p, "`nodes_df`"):
		return BackendPandas, true
	case strings.Contains(p, "`db` is bound"):
		return BackendSQL, true
	default:
		return "", false
	}
}

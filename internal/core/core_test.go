package core

import (
	"strings"
	"testing"

	"repro/internal/llm"
	"repro/internal/malt"
	"repro/internal/prompt"
	"repro/internal/queries"
	"repro/internal/traffic"
)

func newTrafficSession(t *testing.T, model string, opts ...Option) *Session {
	t.Helper()
	m, err := llm.NewSim(model)
	if err != nil {
		t.Fatal(err)
	}
	g := traffic.Generate(traffic.Config{Nodes: 80, Edges: 80, Seed: 42})
	return NewTrafficSession(m, g, opts...)
}

func TestAskReadOnlyQuery(t *testing.T) {
	s := newTrafficSession(t, "gpt-4")
	q, _ := queries.ByID("ta-e2")
	ix, err := s.Ask(q.Text)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Err != nil {
		t.Fatalf("execution error: %v", ix.Err)
	}
	if ix.Result != int64(80) {
		t.Fatalf("result = %v", ix.Result)
	}
	if ix.Code == "" || !strings.Contains(ix.Code, "number_of_nodes") {
		t.Fatalf("code not surfaced for inspection: %q", ix.Code)
	}
	if ix.CostUSD <= 0 {
		t.Fatalf("cost = %v", ix.CostUSD)
	}
}

func TestAskMutationRequiresApproval(t *testing.T) {
	s := newTrafficSession(t, "gpt-4")
	q, _ := queries.ByID("ta-e1") // labels 15.76.* nodes
	ix, err := s.Ask(q.Text)
	if err != nil || ix.Err != nil {
		t.Fatalf("ask: %v %v", err, ix.Err)
	}
	// Before approval the live graph is untouched.
	labeled := 0
	for _, n := range s.Graph().Nodes() {
		if s.Graph().NodeAttrs(n)["label"] == "app:production" {
			labeled++
		}
	}
	if labeled != 0 {
		t.Fatal("mutation applied before approval")
	}
	if err := s.Approve(); err != nil {
		t.Fatal(err)
	}
	for _, n := range s.Graph().Nodes() {
		if s.Graph().NodeAttrs(n)["label"] == "app:production" {
			labeled++
		}
	}
	if labeled == 0 {
		t.Fatal("approval did not commit the mutation")
	}
	if !s.History[0].Approved {
		t.Fatal("history not marked approved")
	}
}

func TestDiscardDropsPending(t *testing.T) {
	s := newTrafficSession(t, "gpt-4")
	q, _ := queries.ByID("ta-e1")
	if _, err := s.Ask(q.Text); err != nil {
		t.Fatal(err)
	}
	s.Discard()
	if err := s.Approve(); err == nil {
		t.Fatal("approve after discard should error")
	}
}

func TestApproveWithoutAsk(t *testing.T) {
	s := newTrafficSession(t, "gpt-4")
	if err := s.Approve(); err == nil {
		t.Fatal("expected error")
	}
}

func TestAskFailingGeneration(t *testing.T) {
	s := newTrafficSession(t, "gpt-4")
	q, _ := queries.ByID("ta-h6") // calibrated gpt-4 syntax failure
	ix, err := s.Ask(q.Text)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Err == nil {
		t.Fatal("expected execution error surfaced to operator")
	}
	if err := s.Approve(); err == nil {
		t.Fatal("failed interaction must not be approvable")
	}
}

func TestSelfDebugAskRecovers(t *testing.T) {
	m, _ := llm.NewSim("bard")
	top := malt.Generate(malt.Config{})
	s := NewMALTSession(m, top)
	q, _ := queries.ByID("malt-m2") // bard fails, self-debug fixes
	ix, err := s.SelfDebugAsk(q.Text)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Err != nil {
		t.Fatalf("self-debug did not recover: %v", ix.Err)
	}
	if len(s.History) != 2 {
		t.Fatalf("history = %d entries, want 2 (attempt + repair)", len(s.History))
	}
}

func TestBackendOption(t *testing.T) {
	s := newTrafficSession(t, "gpt-4", WithBackend(prompt.BackendSQL))
	if s.Backend() != prompt.BackendSQL {
		t.Fatal("backend option ignored")
	}
	q, _ := queries.ByID("ta-e2")
	ix, err := s.Ask(q.Text)
	if err != nil || ix.Err != nil {
		t.Fatalf("ask: %v %v", err, ix.Err)
	}
	if ix.Result != int64(80) {
		t.Fatalf("result = %v", ix.Result)
	}
	if !strings.Contains(ix.Code, "SELECT") {
		t.Fatalf("sql backend should generate SQL, got %q", ix.Code)
	}
}

func TestHistoryAccumulates(t *testing.T) {
	s := newTrafficSession(t, "gpt-4")
	for _, id := range []string{"ta-e2", "ta-e3", "ta-e5"} {
		q, _ := queries.ByID(id)
		if _, err := s.Ask(q.Text); err != nil {
			t.Fatal(err)
		}
	}
	if len(s.History) != 3 {
		t.Fatalf("history = %d", len(s.History))
	}
	for _, ix := range s.History {
		if ix.Prompt == "" || ix.Code == "" {
			t.Fatal("history entries must retain prompt and code for audit")
		}
	}
}

// Package core wires the paper's full framework together (Figure 2): the
// application wrapper supplies context, the prompt generators build the
// LLM request, the model emits code, the sandbox executes it against a
// *clone* of the live network state, and the operator inspects the code
// and result before approving the state change (the UX sync loop).
//
// This is the library a downstream user embeds: create a Session over an
// application, Ask natural-language questions, inspect the returned code
// and result, and Approve mutations to commit them.
//
// Four code-generation backends are available via WithBackend. The three
// per-substrate backends mirror the paper's comparison — "networkx" binds
// the attributed graph, "pandas" the node/edge dataframes, "sql" the
// relational database — and generated code sees exactly one representation.
// The fourth, "federated", binds all three substrates at once plus a
// cross-substrate query planner (`fed`, package internal/federate):
// generated programs can push scans down to any substrate and join across
// them in one sandboxed run, e.g.
//
//	s := core.NewTrafficSession(model, g, core.WithBackend("federated"))
//	ix, _ := s.Ask("Which destinations of heavy edges have the highest in-degree?")
//	// generated code may contain:
//	//   fed.scan("sql", "edges").filter("bytes", ">", 500000).
//	//       join(fed.scan("graph", "degree"), "dst", "id").
//	//       sort("in_degree", false).limit(5).collect()
//
// Every backend executes against the same cloned state, so inspection and
// Approve semantics are identical across all four.
//
// Sessions accept any llm.Model, including gateway-backed ones: wrap a
// serving gateway (internal/modelserve — batching, rate limiting, retry,
// record/replay) with llm.NewProviderModel(gw, "gpt-4") and pass that in
// place of a simulated model; the Ask pipeline is unchanged.
package core

import (
	"fmt"

	"repro/internal/dataframe"
	"repro/internal/diagnosis"
	"repro/internal/graph"
	"repro/internal/llm"
	"repro/internal/malt"
	"repro/internal/nemoeval"
	"repro/internal/nql"
	"repro/internal/prompt"
	"repro/internal/sandbox"
	"repro/internal/sqldb"
	"repro/internal/tokens"
	"repro/internal/traffic"
)

// Session is a natural-language network management session over one
// application instance.
type Session struct {
	model   llm.Model
	backend string
	policy  sandbox.Policy

	wrapper prompt.AppWrapper
	// live state (committed); pending holds the post-run clone awaiting
	// approval.
	live    *state
	pending *state

	// History of every interaction for audit (the paper's record of
	// input/output for future prompt enhancement).
	History []*Interaction

	invariants []Invariant
}

type state struct {
	graph        *graph.Graph
	nodes, edges *dataframe.Frame
	db           *sqldb.DB
	// probes (diagnosis app): read-only observation data.
	probes     *dataframe.Frame
	probesList nql.Value
}

func (s *state) clone() *state {
	c := &state{probesList: s.probesList}
	if s.graph != nil {
		c.graph = s.graph.Clone()
	}
	if s.nodes != nil {
		c.nodes = s.nodes.Clone()
	}
	if s.edges != nil {
		c.edges = s.edges.Clone()
	}
	if s.db != nil {
		c.db = s.db.Clone()
	}
	if s.probes != nil {
		c.probes = s.probes.Clone()
	}
	return c
}

// Interaction is one Ask round: the prompt, generated code, execution
// outcome and cost.
type Interaction struct {
	Query    string
	Prompt   string
	Code     string
	Result   nql.Value
	Stdout   string
	Err      error
	CostUSD  float64
	Approved bool
}

// Option configures a session.
type Option func(*Session)

// WithBackend selects the code-generation backend (default NetworkX).
func WithBackend(b string) Option { return func(s *Session) { s.backend = b } }

// WithPolicy overrides the sandbox resource policy.
func WithPolicy(p sandbox.Policy) Option { return func(s *Session) { s.policy = p } }

// Invariant is a network safety property checked against the post-run
// graph before a state change may be approved — the paper's §3 execution
// sandbox "validating network invariants" hook. Return an error describing
// the violation.
type Invariant struct {
	Name  string
	Check func(g *graph.Graph) error
}

// WithInvariants installs invariants enforced at Approve time.
func WithInvariants(invs ...Invariant) Option {
	return func(s *Session) { s.invariants = append(s.invariants, invs...) }
}

// InvariantViolation is returned by Approve when a pending change breaks a
// configured invariant; the pending state is retained so the operator can
// inspect it and Discard.
type InvariantViolation struct {
	Invariant string
	Err       error
}

func (e *InvariantViolation) Error() string {
	return fmt.Sprintf("core: invariant %q violated: %v", e.Invariant, e.Err)
}

// NewTrafficSession creates a session over a communication graph.
func NewTrafficSession(model llm.Model, g *graph.Graph, opts ...Option) *Session {
	nodes, edges := traffic.Frames(g)
	s := &Session{
		model:   model,
		backend: prompt.BackendNetworkX,
		policy:  sandbox.DefaultPolicy,
		wrapper: traffic.NewWrapper(g),
		live:    &state{graph: g, nodes: nodes, edges: edges, db: traffic.Database(g)},
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// NewMALTSession creates a session over a MALT topology.
func NewMALTSession(model llm.Model, t *malt.Topology, opts ...Option) *Session {
	nodes, edges := t.Frames()
	s := &Session{
		model:   model,
		backend: prompt.BackendNetworkX,
		policy:  sandbox.DefaultPolicy,
		wrapper: malt.NewWrapper(t),
		live:    &state{graph: t.Graph(), nodes: nodes, edges: edges, db: t.Database()},
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// NewDiagnosisSession creates a session over a failure-diagnosis workload
// (the §5 extension application).
func NewDiagnosisSession(model llm.Model, w *diagnosis.Workload, opts ...Option) *Session {
	nodes, edges, probes := w.Frames()
	s := &Session{
		model:   model,
		backend: prompt.BackendNetworkX,
		policy:  sandbox.DefaultPolicy,
		wrapper: diagnosis.NewWrapper(w),
		live: &state{
			graph: w.G, nodes: nodes, edges: edges, db: w.Database(),
			probes: probes, probesList: nemoeval.ProbesListValue(w),
		},
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Graph exposes the committed network graph (read-only by convention).
func (s *Session) Graph() *graph.Graph { return s.live.graph }

// Backend reports the active code-generation backend.
func (s *Session) Backend() string { return s.backend }

func (s *Session) bindings(st *state) map[string]nql.Value {
	inst := &nemoeval.Instance{
		Graph: st.graph, Nodes: st.nodes, Edges: st.edges, DB: st.db,
		Probes: st.probes, ProbesList: st.probesList,
	}
	return inst.Bindings(s.backend)
}

// Ask runs one natural-language query through the full pipeline. The
// generated code executes against a clone of the live state; inspect the
// returned Interaction (Code, Result, Err) and call Approve to commit.
func (s *Session) Ask(query string) (*Interaction, error) {
	p := prompt.BuildCodePrompt(s.wrapper, s.backend, query)
	ix := &Interaction{Query: query, Prompt: p}
	s.History = append(s.History, ix)
	resp, err := s.model.Generate(llm.Request{Prompt: p})
	if err != nil {
		ix.Err = err
		return ix, err
	}
	ix.Code = resp.Text
	if cost, cerr := tokens.Cost(s.model.Name(), resp.PromptTokens, resp.CompletionTokens); cerr == nil {
		ix.CostUSD = cost
	}
	trial := s.live.clone()
	res := sandbox.Run(resp.Text, s.bindings(trial), s.policy)
	ix.Stdout = res.Stdout
	if !res.OK() {
		ix.Err = res.Err
		return ix, nil
	}
	ix.Result = res.Value
	s.pending = trial
	return ix, nil
}

// Approve commits the most recent Ask's state changes to the live state
// (the UX "sync state" edge in Figure 2). It is a no-op error when there
// is nothing pending.
func (s *Session) Approve() error {
	if s.pending == nil {
		return fmt.Errorf("core: no pending result to approve")
	}
	if s.pending.graph != nil {
		for _, inv := range s.invariants {
			if err := inv.Check(s.pending.graph); err != nil {
				return &InvariantViolation{Invariant: inv.Name, Err: err}
			}
		}
	}
	s.live = s.pending
	s.pending = nil
	if len(s.History) > 0 {
		s.History[len(s.History)-1].Approved = true
	}
	// Refresh the wrapper over the new graph so subsequent prompts see
	// up-to-date context.
	if s.live.graph != nil {
		if _, ok := s.wrapper.(*traffic.Wrapper); ok {
			s.wrapper = traffic.NewWrapper(s.live.graph)
		}
	}
	return nil
}

// Discard drops the pending state.
func (s *Session) Discard() {
	s.pending = nil
}

// SelfDebugAsk asks once and, if execution fails, performs one self-debug
// repair round before giving up.
func (s *Session) SelfDebugAsk(query string) (*Interaction, error) {
	first, err := s.Ask(query)
	if err != nil || first.Err == nil {
		return first, err
	}
	repair := prompt.BuildRepairPrompt(first.Prompt, first.Code, first.Err.Error())
	resp, gerr := s.model.Generate(llm.Request{Prompt: repair})
	if gerr != nil {
		return first, nil
	}
	ix := &Interaction{Query: query, Prompt: repair, Code: resp.Text}
	s.History = append(s.History, ix)
	trial := s.live.clone()
	res := sandbox.Run(resp.Text, s.bindings(trial), s.policy)
	ix.Stdout = res.Stdout
	if !res.OK() {
		ix.Err = res.Err
		return ix, nil
	}
	ix.Result = res.Value
	s.pending = trial
	return ix, nil
}

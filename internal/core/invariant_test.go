package core

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/graph"
	"repro/internal/llm"
	"repro/internal/queries"
	"repro/internal/traffic"
)

// minEdgesInvariant refuses changes that drop the edge count below n.
func minEdgesInvariant(n int) Invariant {
	return Invariant{
		Name: fmt.Sprintf("at-least-%d-edges", n),
		Check: func(g *graph.Graph) error {
			if g.NumEdges() < n {
				return fmt.Errorf("edge count %d below floor %d", g.NumEdges(), n)
			}
			return nil
		},
	}
}

func TestInvariantBlocksApproval(t *testing.T) {
	m, _ := llm.NewSim("gpt-4")
	g := traffic.Generate(traffic.Config{Nodes: 80, Edges: 80, Seed: 42})
	// A change-freeze invariant: no node may carry a "label" attribute.
	// The ta-e1 labeling mutation is guaranteed to violate it (the fixed
	// 15.76 prefix always has members).
	freeze := Invariant{Name: "label-freeze", Check: func(g *graph.Graph) error {
		for _, n := range g.Nodes() {
			if _, ok := g.NodeAttrs(n)["label"]; ok {
				return fmt.Errorf("node %s acquired a label during freeze", n)
			}
		}
		return nil
	}}
	s := NewTrafficSession(m, g, WithInvariants(freeze))
	q, _ := queries.ByID("ta-e1")
	ix, err := s.Ask(q.Text)
	if err != nil || ix.Err != nil {
		t.Fatalf("ask: %v %v", err, ix.Err)
	}
	err = s.Approve()
	var viol *InvariantViolation
	if !errors.As(err, &viol) {
		t.Fatalf("err = %v, want InvariantViolation", err)
	}
	if viol.Invariant != "label-freeze" {
		t.Fatalf("invariant = %s", viol.Invariant)
	}
	// Live state untouched; pending retained for inspection, then discard.
	for _, n := range s.Graph().Nodes() {
		if _, ok := s.Graph().NodeAttrs(n)["label"]; ok {
			t.Fatal("violation leaked into live state")
		}
	}
	s.Discard()
	if err := s.Approve(); err == nil {
		t.Fatal("approve after discard should fail")
	}
}

func TestInvariantAllowsSafeChange(t *testing.T) {
	m, _ := llm.NewSim("gpt-4")
	g := traffic.Generate(traffic.Config{Nodes: 80, Edges: 80, Seed: 42})
	s := NewTrafficSession(m, g, WithInvariants(minEdgesInvariant(1)))
	q, _ := queries.ByID("ta-e1") // labeling mutation keeps all edges
	ix, err := s.Ask(q.Text)
	if err != nil || ix.Err != nil {
		t.Fatalf("ask: %v %v", err, ix.Err)
	}
	if err := s.Approve(); err != nil {
		t.Fatalf("safe change blocked: %v", err)
	}
}

func TestMultipleInvariantsAllChecked(t *testing.T) {
	m, _ := llm.NewSim("gpt-4")
	g := traffic.Generate(traffic.Config{Nodes: 80, Edges: 80, Seed: 42})
	called := 0
	counting := Invariant{Name: "counting", Check: func(*graph.Graph) error {
		called++
		return nil
	}}
	s := NewTrafficSession(m, g, WithInvariants(counting, minEdgesInvariant(1)))
	q, _ := queries.ByID("ta-e1")
	if _, err := s.Ask(q.Text); err != nil {
		t.Fatal(err)
	}
	if err := s.Approve(); err != nil {
		t.Fatal(err)
	}
	if called != 1 {
		t.Fatalf("counting invariant called %d times", called)
	}
}

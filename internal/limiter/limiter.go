// Package limiter provides the shared rate-limiting primitives the serving
// layers build on: a lazy-refill (GCRA-style) token bucket and a bounded
// concurrency gauge. The bucket was extracted from internal/modelserve's
// gateway so the query service's per-tenant admission control and the model
// gateway's per-model rate limits share one audited implementation.
//
// Neither primitive spawns goroutines or timers: Bucket keeps one float of
// state refilled lazily from the caller's clock, and Gauge is a single
// atomic counter. Callers decide whether a deficit means sleeping (the
// gateway queues) or shedding (the service returns 429 with Retry-After).
package limiter

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Bucket is a lazy-refill token bucket. Take debits immediately and
// returns how long the caller must sleep to cover any deficit; TryTake
// admits only when the bucket can cover the debit now, returning the
// retry-after hint otherwise. The GCRA-style formulation keeps one float
// of state and never needs a background refill goroutine.
//
// Bucket is safe for concurrent use.
type Bucket struct {
	mu     sync.Mutex
	rate   float64 // units per second
	burst  float64
	tokens float64
	last   time.Time
}

// NewBucket creates a full bucket refilling at rate units/second with the
// given burst capacity.
func NewBucket(rate, burst float64, now time.Time) *Bucket {
	return &Bucket{rate: rate, burst: burst, tokens: burst, last: now}
}

func (b *Bucket) refill(now time.Time) {
	if elapsed := now.Sub(b.last).Seconds(); elapsed > 0 {
		b.tokens = math.Min(b.burst, b.tokens+elapsed*b.rate)
	}
	b.last = now
}

// Take debits n units unconditionally and returns how long the caller must
// wait before the debt is covered (0 when the bucket had capacity). Use
// when the caller queues: the gateway sleeps out the deficit rather than
// rejecting.
func (b *Bucket) Take(n float64, now time.Time) time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refill(now)
	b.tokens -= n
	if b.tokens >= 0 {
		return 0
	}
	return time.Duration(-b.tokens / b.rate * float64(time.Second))
}

// TryTake debits n units only if the bucket can cover them now. When it
// cannot, nothing is debited and the returned duration is how long until n
// units will have accrued — the Retry-After hint for load shedding.
func (b *Bucket) TryTake(n float64, now time.Time) (ok bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refill(now)
	if b.tokens >= n {
		b.tokens -= n
		return true, 0
	}
	deficit := n - b.tokens
	return false, time.Duration(deficit / b.rate * float64(time.Second))
}

// BucketState is a point-in-time view of a Bucket for diagnostic bundles
// and admin endpoints: the static rate/burst configuration plus the token
// level after refilling to now.
type BucketState struct {
	Rate   float64 `json:"rate"`
	Burst  float64 `json:"burst"`
	Tokens float64 `json:"tokens"`
}

// Snapshot refills to now and reports the bucket's state without debiting.
func (b *Bucket) Snapshot(now time.Time) BucketState {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refill(now)
	return BucketState{Rate: b.rate, Burst: b.burst, Tokens: b.tokens}
}

// GaugeState is a point-in-time view of a Gauge (limit <= 0 = unbounded).
type GaugeState struct {
	Limit    int64 `json:"limit"`
	Inflight int64 `json:"inflight"`
}

// Snapshot reports the gauge's limit and current holder count.
func (g *Gauge) Snapshot() GaugeState {
	return GaugeState{Limit: g.limit, Inflight: g.n.Load()}
}

// Gauge is a bounded concurrency counter: Acquire admits while the count
// is below the limit. A zero or negative limit means unbounded.
type Gauge struct {
	limit int64
	n     atomic.Int64
}

// NewGauge creates a gauge admitting up to limit concurrent holders
// (<= 0 = unlimited).
func NewGauge(limit int) *Gauge { return &Gauge{limit: int64(limit)} }

// Acquire reserves one slot, reporting false (and reserving nothing) when
// the gauge is full.
func (g *Gauge) Acquire() bool {
	if g.limit <= 0 {
		g.n.Add(1)
		return true
	}
	for {
		cur := g.n.Load()
		if cur >= g.limit {
			return false
		}
		if g.n.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

// Release returns one slot.
func (g *Gauge) Release() { g.n.Add(-1) }

// Inflight reports the current holder count.
func (g *Gauge) Inflight() int { return int(g.n.Load()) }

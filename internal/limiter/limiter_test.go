package limiter

import (
	"sync"
	"testing"
	"time"
)

func TestBucketTakeWithinBurst(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBucket(10, 5, now)
	for i := 0; i < 5; i++ {
		if w := b.Take(1, now); w != 0 {
			t.Fatalf("take %d within burst waited %v", i, w)
		}
	}
	if w := b.Take(1, now); w != 100*time.Millisecond {
		t.Fatalf("deficit wait = %v, want 100ms", w)
	}
}

func TestBucketRefill(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBucket(10, 1, now)
	if w := b.Take(1, now); w != 0 {
		t.Fatalf("first take waited %v", w)
	}
	// After 100ms one token has accrued.
	if w := b.Take(1, now.Add(100*time.Millisecond)); w != 0 {
		t.Fatalf("refilled take waited %v", w)
	}
	// Refill caps at burst.
	if w := b.Take(3, now.Add(time.Hour)); w == 0 {
		t.Fatal("burst cap not enforced")
	}
}

func TestBucketTryTakeShedsWithoutDebit(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBucket(2, 1, now)
	if ok, _ := b.TryTake(1, now); !ok {
		t.Fatal("full bucket rejected")
	}
	ok, retry := b.TryTake(1, now)
	if ok {
		t.Fatal("empty bucket admitted")
	}
	if retry != 500*time.Millisecond {
		t.Fatalf("retry-after = %v, want 500ms", retry)
	}
	// The rejected TryTake must not have debited: half a second later one
	// token has accrued and admission succeeds again.
	if ok, _ := b.TryTake(1, now.Add(500*time.Millisecond)); !ok {
		t.Fatal("rejected TryTake debited the bucket")
	}
}

func TestBucketConcurrentTake(t *testing.T) {
	now := time.Now()
	b := NewBucket(1, 100, now)
	var wg sync.WaitGroup
	admitted := make(chan struct{}, 200)
	for i := 0; i < 200; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if ok, _ := b.TryTake(1, now); ok {
				admitted <- struct{}{}
			}
		}()
	}
	wg.Wait()
	if n := len(admitted); n != 100 {
		t.Fatalf("admitted %d of 200 under a burst of 100", n)
	}
}

func TestGauge(t *testing.T) {
	g := NewGauge(2)
	if !g.Acquire() || !g.Acquire() {
		t.Fatal("gauge rejected within limit")
	}
	if g.Acquire() {
		t.Fatal("gauge admitted over limit")
	}
	g.Release()
	if !g.Acquire() {
		t.Fatal("gauge rejected after release")
	}
	if g.Inflight() != 2 {
		t.Fatalf("inflight = %d, want 2", g.Inflight())
	}
}

func TestGaugeUnlimited(t *testing.T) {
	g := NewGauge(0)
	for i := 0; i < 100; i++ {
		if !g.Acquire() {
			t.Fatal("unlimited gauge rejected")
		}
	}
}

func TestBucketSnapshot(t *testing.T) {
	t0 := time.Unix(1_700_000_000, 0)
	b := NewBucket(10, 5, t0)
	if ok, _ := b.TryTake(2, t0); !ok {
		t.Fatal("full bucket rejected a take within burst")
	}
	st := b.Snapshot(t0)
	if st.Rate != 10 || st.Burst != 5 || st.Tokens != 3 {
		t.Fatalf("snapshot = %+v, want rate 10 burst 5 tokens 3", st)
	}
	// Snapshot refills to now but never debits: half a second restores the
	// bucket to its burst cap, and repeated snapshots agree.
	st = b.Snapshot(t0.Add(500 * time.Millisecond))
	if st.Tokens != 5 {
		t.Fatalf("tokens after refill = %g, want capped at burst 5", st.Tokens)
	}
	if again := b.Snapshot(t0.Add(500 * time.Millisecond)); again != st {
		t.Fatalf("snapshot debited state: %+v then %+v", st, again)
	}
}

func TestGaugeSnapshot(t *testing.T) {
	g := NewGauge(3)
	g.Acquire()
	g.Acquire()
	if st := g.Snapshot(); st.Limit != 3 || st.Inflight != 2 {
		t.Fatalf("snapshot = %+v, want limit 3 inflight 2", st)
	}
	g.Release()
	if st := g.Snapshot(); st.Inflight != 1 {
		t.Fatalf("snapshot after release = %+v, want inflight 1", st)
	}
}

package repro

// Benchmark harness: one benchmark per table and figure in the paper's
// evaluation section (regenerating the artifact and reporting its headline
// numbers as metrics), micro-benchmarks for the substrates, and ablations
// for the design choices DESIGN.md calls out.
//
//	go test -bench=. -benchmem
//	go test -bench=BenchmarkTable2 -benchtime=1x

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dataframe"
	"repro/internal/federate"
	"repro/internal/graph"
	"repro/internal/llm"
	"repro/internal/modelserve"
	"repro/internal/nemoeval"
	"repro/internal/nql"
	"repro/internal/nql/analysis"
	"repro/internal/nqlbind"
	"repro/internal/obs"
	"repro/internal/prompt"
	"repro/internal/queries"
	"repro/internal/sandbox"
	"repro/internal/sqldb"
	"repro/internal/synthesis"
	"repro/internal/tokens"
	"repro/internal/traffic"
)

// --- E1: Table 2 (accuracy summary, both applications) ---

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := nemoeval.NewRunner()
		tr, err := r.RunApp(queries.AppTraffic, true)
		if err != nil {
			b.Fatal(err)
		}
		ml, err := r.RunApp(queries.AppMALT, false)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(tr["gpt-4|networkx"].Accuracy, "gpt4-traffic-nx-acc")
		b.ReportMetric(ml["gpt-4|networkx"].Accuracy, "gpt4-malt-nx-acc")
		b.ReportMetric(tr["gpt-4|strawman"].Accuracy, "gpt4-traffic-strawman-acc")
	}
}

// --- E2: Table 3 (traffic breakdown by complexity) ---

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := nemoeval.NewRunner()
		cells, err := r.RunApp(queries.AppTraffic, true)
		if err != nil {
			b.Fatal(err)
		}
		c := cells["gpt-4|networkx"]
		b.ReportMetric(c.ByComplexity[queries.Easy], "gpt4-nx-easy")
		b.ReportMetric(c.ByComplexity[queries.Medium], "gpt4-nx-medium")
		b.ReportMetric(c.ByComplexity[queries.Hard], "gpt4-nx-hard")
	}
}

// --- E3: Table 4 (MALT breakdown by complexity) ---

func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := nemoeval.NewRunner()
		cells, err := r.RunApp(queries.AppMALT, false)
		if err != nil {
			b.Fatal(err)
		}
		c := cells["gpt-4|networkx"]
		b.ReportMetric(c.ByComplexity[queries.Easy], "gpt4-nx-easy")
		b.ReportMetric(c.ByComplexity[queries.Medium], "gpt4-nx-medium")
		b.ReportMetric(c.ByComplexity[queries.Hard], "gpt4-nx-hard")
	}
}

// --- E4: Table 5 (error taxonomy of NetworkX failures) ---

func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := nemoeval.NewRunner()
		out, err := r.Table5()
		if err != nil {
			b.Fatal(err)
		}
		failures := 0
		for _, rec := range r.Log.Failures() {
			_ = rec
			failures++
		}
		b.ReportMetric(float64(failures), "networkx-failures")
		_ = out
	}
}

// --- E5: Table 6 (pass@k and self-debug case study) ---

func BenchmarkTable6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cs, err := synthesis.RunCaseStudy()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cs.Pass1, "pass@1")
		b.ReportMetric(cs.Pass5, "pass@5")
		b.ReportMetric(cs.SelfDebug, "self-debug")
	}
}

// --- E6: Figure 4a (cost CDF at 80 nodes and edges) ---

func BenchmarkFigure4a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := nemoeval.Figure4a()
		if err != nil {
			b.Fatal(err)
		}
		_ = out
	}
}

// --- E7: Figure 4b (cost vs graph size; strawman token-limit crossover) ---

func BenchmarkFigure4b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := nemoeval.Figure4b()
		if err != nil {
			b.Fatal(err)
		}
		_ = out
	}
}

// --- E8: streamed, sharded dataset sweep (Figure-4 scale-out path) ---

// BenchmarkStreamSweep measures the full scale-out pipeline at the size the
// in-memory generator used to be the wall: stream 100k edges into 8
// per-shard frozen masters, aggregate the shards over the worker pool and
// merge degree/component/PageRank stats. Watched by benchdiff.
func BenchmarkStreamSweep(b *testing.B) {
	cfg := traffic.Config{Nodes: 10000, Edges: 100000, Seed: 42}
	for i := 0; i < b.N; i++ {
		r := nemoeval.NewRunner()
		out, err := r.StreamSweep(cfg, 8)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("empty sweep report")
		}
	}
}

// --- E9: model-serving gateway throughput (batching on vs off) ---

// BenchmarkGatewayThroughput pushes a fixed worker-pool burst of real
// code-generation requests through the gateway-fronted simulated provider
// — the serving path every live-model scenario rides — with request
// coalescing enabled and disabled. Watched by benchdiff.
func BenchmarkGatewayThroughput(b *testing.B) {
	g := benchGraph(80, 80)
	w := traffic.NewWrapper(g)
	var prompts []string
	for _, q := range queries.Traffic() {
		prompts = append(prompts, prompt.BuildCodePrompt(w, prompt.BackendNetworkX, q.Text))
	}
	const workers = 64
	const requests = 2048
	for _, batching := range []struct {
		name   string
		size   int
		window time.Duration
	}{
		// A coalescing window is what makes batches fill on a mostly-idle
		// scheduler (single-core runners serialize worker and dispatcher
		// goroutines, so backlog alone rarely forms); off is the pure
		// per-request dispatch path.
		{"batching=on", 16, 200 * time.Microsecond},
		{"batching=off", 1, 0},
	} {
		b.Run(batching.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				gw, err := modelserve.New(modelserve.Config{
					Provider:    modelserve.NewSimProvider(),
					BatchSize:   batching.size,
					BatchWindow: batching.window,
				})
				if err != nil {
					b.Fatal(err)
				}
				var wg sync.WaitGroup
				var failed atomic.Int64
				per := requests / workers
				wg.Add(workers)
				for wkr := 0; wkr < workers; wkr++ {
					go func(wkr int) {
						defer wg.Done()
						model := llm.NewProviderModel(gw, llm.ModelNames[wkr%len(llm.ModelNames)])
						for j := 0; j < per; j++ {
							req := llm.Request{Prompt: prompts[(wkr+j)%len(prompts)], Attempt: 1 + j%5}
							if _, err := model.Generate(req); err != nil {
								failed.Add(1)
							}
						}
					}(wkr)
				}
				wg.Wait()
				if failed.Load() != 0 {
					b.Fatalf("%d generations failed", failed.Load())
				}
				stats := gw.Stats()
				b.ReportMetric(float64(stats.ProviderCalls), "provider-calls")
				b.ReportMetric(float64(stats.MaxBatch), "max-batch")
			}
		})
	}
}

// --- substrate micro-benchmarks ---

func benchGraph(n, e int) *graph.Graph {
	return traffic.Generate(traffic.Config{Nodes: n, Edges: e, Seed: 7})
}

func BenchmarkGraphPageRank(b *testing.B) {
	g := benchGraph(500, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.PageRank(0.85, 100, 1e-9)
	}
}

func BenchmarkGraphBetweenness(b *testing.B) {
	g := benchGraph(150, 600)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.BetweennessCentrality(true)
	}
}

func BenchmarkGraphComponents(b *testing.B) {
	g := benchGraph(2000, 4000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ConnectedComponents()
	}
}

// BenchmarkGraphClone measures the evaluation pipeline's clone path: a
// frozen master (as every dataset builder now prepares) cloned per
// instance, sharing attribute maps copy-on-write.
func BenchmarkGraphClone(b *testing.B) {
	g := benchGraph(1000, 3000)
	g.Freeze()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Clone()
	}
}

// BenchmarkGraphCloneDeep measures a full deep copy (no Freeze): every
// attribute map is duplicated eagerly.
func BenchmarkGraphCloneDeep(b *testing.B) {
	g := benchGraph(1000, 3000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Clone()
	}
}

func BenchmarkDataframeGroupBy(b *testing.B) {
	f := dataframe.New("k", "v")
	for i := 0; i < 10000; i++ {
		f.AppendRow(fmt.Sprintf("g%d", i%40), i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := f.GroupBy("k")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := g.Agg(dataframe.AggSpec{Col: "v", Func: dataframe.AggSum}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDataframeSort(b *testing.B) {
	f := dataframe.New("v")
	for i := 0; i < 10000; i++ {
		f.AppendRow((i * 2654435761) % 100000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.SortBy(true, "v"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSQLGroupBy(b *testing.B) {
	db := traffic.Database(benchGraph(500, 2000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query("SELECT src, SUM(bytes) AS s FROM edges GROUP BY src ORDER BY s DESC"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSQLHashJoin(b *testing.B) {
	db := traffic.Database(benchGraph(500, 2000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query("SELECT e.src, n.ip FROM edges e JOIN nodes n ON e.src = n.id"); err != nil {
			b.Fatal(err)
		}
	}
}

// nqlBenchSrc is the shared engine micro-benchmark program: arithmetic,
// branching and a loop — the interpreter's historic hot shape.
const nqlBenchSrc = `
let total = 0
for i in range(1000) {
  if i % 3 == 0 { total = total + i }
}
return total`

// BenchmarkNQLInterpreter measures the reference tree-walking engine
// (parse + execute per iteration, as it always has).
func BenchmarkNQLInterpreter(b *testing.B) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := nql.NewInterp(nql.Limits{}, nil)
		in.Engine = nql.EngineInterp
		if _, err := in.Run(nqlBenchSrc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNQLVM measures the bytecode engine on the cached-program path
// the evaluation matrix actually runs: the program is compiled once and
// executed per trial on a fresh interpreter. Watched by benchdiff.
func BenchmarkNQLVM(b *testing.B) {
	prog, err := nql.Parse(nqlBenchSrc)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := prog.Compiled(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := nql.NewInterp(nql.Limits{}, nil)
		if _, err := in.RunProgram(prog); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNQLParse(b *testing.B) {
	q, _ := queries.ByID("ta-h5")
	src := q.Golden["pandas"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nql.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNQLAnalyze measures the semantic analyzer on a golden program
// with name resolution against the federated surface — the exact work
// sandbox.Vet and netqueryd's pre-admission gate add per (uncached)
// program. Matched by the micro pass's NQL regex and tracked by benchdiff.
func BenchmarkNQLAnalyze(b *testing.B) {
	q, _ := queries.ByID("ta-h5")
	src := q.Golden["federated"]
	prog, err := nql.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	globals := nemoeval.StaticGlobals(prompt.BackendFederated)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if diags := analysis.Analyze(prog, analysis.Options{Globals: globals}); len(diags) != 0 {
			b.Fatalf("golden program drew diagnostics: %v", diags)
		}
	}
}

func BenchmarkSandboxGoldenQuery(b *testing.B) {
	g := benchGraph(80, 80)
	g.Freeze() // evaluation masters are frozen; clones are copy-on-write
	q, _ := queries.ByID("ta-h1")
	src := q.Golden["networkx"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := sandbox.Run(src, nqlbind.Globals(g.Clone(), nil), sandbox.DefaultPolicy)
		if !res.OK() {
			b.Fatal(res.Err)
		}
	}
}

// BenchmarkObsOverhead gates the observability layer's cost on the hot
// query path: the same sandboxed golden query with instrumentation fully
// off (the production default — nil-receiver no-ops everywhere) and with
// tracing plus operator/VM profiling fully on. "disabled" is watched by
// benchdiff against the uninstrumented baseline; "enabled" documents the
// price of -trace-sample 1 plus "profile": true.
func BenchmarkObsOverhead(b *testing.B) {
	g := benchGraph(80, 80)
	g.Freeze()
	q, _ := queries.ByID("ta-h1")
	src := q.Golden["networkx"]
	b.Run("disabled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res := sandbox.Run(src, nqlbind.Globals(g.Clone(), nil), sandbox.DefaultPolicy)
			if !res.OK() {
				b.Fatal(res.Err)
			}
		}
	})
	b.Run("enabled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr := obs.NewTrace("bench-1")
			ctx := obs.WithProfile(obs.WithTrace(context.Background(), tr), obs.NewProfile())
			_, span := obs.StartSpan(ctx, "query")
			policy := sandbox.DefaultPolicy
			policy.Profile = nql.NewVMProfile()
			policy.Context = ctx
			res := sandbox.Run(src, nqlbind.Globals(g.Clone(), nil), policy)
			span.End()
			if !res.OK() {
				b.Fatal(res.Err)
			}
		}
	})
	// flight is the recorder's hot-path tax on an unremarkable request: one
	// Admit (sampled out) per iteration. The 0 allocs/op figure is the
	// contract — a healthy fast request must not allocate for the recorder.
	b.Run("flight", func(b *testing.B) {
		rec := obs.NewFlightRecorder(256, 1<<40)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if rec.Admit() {
				b.Fatal("sampled in with an astronomically large interval")
			}
		}
	})
}

// BenchmarkFederatedJoin measures the federated planner's hot path: a
// filtered SQL scan (pushed down as a WHERE clause) joined against the
// graph's degree table, sorted and limited — the cross-substrate plan shape
// the federated backend introduces.
func BenchmarkFederatedJoin(b *testing.B) {
	inst := nemoeval.TrafficDataset(nemoeval.DefaultTrafficConfig)()
	cat := inst.Federation()
	plan := &federate.Limit{N: 5, Input: &federate.Sort{
		Ascending: false, Cols: []string{"in_degree"},
		Input: &federate.Join{
			Left: &federate.Filter{
				Input: &federate.Scan{Source: federate.SourceSQL, Table: "edges"},
				Pred:  federate.Cmp{Col: "bytes", Op: ">", Value: int64(500000)},
			},
			Right:    &federate.Scan{Source: federate.SourceGraph, Table: federate.GraphTableDegree},
			LeftKey:  "dst",
			RightKey: "id",
		},
	}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rel, err := federate.Run(cat, plan)
		if err != nil {
			b.Fatal(err)
		}
		if rel.NumRows() == 0 {
			b.Fatal("empty join result")
		}
	}
}

// BenchmarkFederatedPipeline compares the staged columnar executor against
// the legacy row-at-a-time recursive executor on the same prepared plan —
// a filtered scan aggregated and sorted over a larger traffic graph, where
// batching and stage overlap should pay. Run keeps routing through Prepare
// (pipeline mode); Exec is the retained recursive path.
func BenchmarkFederatedPipeline(b *testing.B) {
	cfg := nemoeval.DefaultTrafficConfig
	cfg.Nodes, cfg.Edges = 600, 6000
	inst := nemoeval.TrafficDataset(cfg)()
	cat := inst.Federation()
	plan := federate.Node(&federate.Sort{
		Ascending: false, Cols: []string{"total"},
		Input: &federate.Aggregate{
			GroupBy: []string{"src"},
			Aggs: []federate.AggSpec{
				{Col: "bytes", Fn: "sum", As: "total"},
				{Col: "bytes", Fn: "count", As: "n"},
			},
			Input: &federate.Filter{
				Input: &federate.Scan{Source: federate.SourceSQL, Table: "edges"},
				Pred:  federate.Cmp{Col: "bytes", Op: ">", Value: int64(1000)},
			},
		},
	})
	b.Run("pipeline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rel, err := federate.Run(cat, plan)
			if err != nil {
				b.Fatal(err)
			}
			if rel.NumRows() == 0 {
				b.Fatal("empty result")
			}
		}
	})
	b.Run("legacy", func(b *testing.B) {
		opt := federate.Optimize(plan)
		for i := 0; i < b.N; i++ {
			rel, err := federate.Exec(cat, opt)
			if err != nil {
				b.Fatal(err)
			}
			if rel.NumRows() == 0 {
				b.Fatal("empty result")
			}
		}
	})
}

// BenchmarkFederatedGoldenQuery runs a complete federated golden (plan
// construction in NQL + execution) against a fresh instance per iteration,
// the federated analogue of BenchmarkSandboxGoldenQuery.
func BenchmarkFederatedGoldenQuery(b *testing.B) {
	build := nemoeval.TrafficDataset(nemoeval.DefaultTrafficConfig)
	q, _ := queries.ByID("ta-h7")
	src := q.Golden["federated"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst := build()
		res := sandbox.Run(src, inst.Bindings("federated"), sandbox.DefaultPolicy)
		if !res.OK() {
			b.Fatal(res.Err)
		}
	}
}

func BenchmarkTokenCount(b *testing.B) {
	g := benchGraph(150, 150)
	data, err := g.MarshalJSON()
	if err != nil {
		b.Fatal(err)
	}
	s := string(data)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tokens.Count(s)
	}
}

// --- ablations ---

// BenchmarkAblationBackend quantifies the paper's "graph library simplifies
// generated code" claim: golden program size and sandbox latency per
// backend over the full traffic suite.
func BenchmarkAblationBackend(b *testing.B) {
	for _, backend := range prompt.Backends {
		b.Run(backend, func(b *testing.B) {
			ev := nemoeval.NewEvaluator(nemoeval.TrafficDataset(nemoeval.DefaultTrafficConfig))
			totalLen := 0
			for _, q := range queries.Traffic() {
				totalLen += len(q.Golden[backend])
			}
			b.ReportMetric(float64(totalLen)/float64(len(queries.Traffic())), "golden-bytes/query")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, q := range queries.Traffic() {
					rec := ev.EvaluateCode(q, backend, q.Golden[backend])
					if !rec.Pass {
						b.Fatalf("%s/%s: %s", q.ID, backend, rec.Err)
					}
				}
			}
		})
	}
}

// BenchmarkAblationContext measures what the application wrapper's context
// costs per query in prompt tokens — the price of the paper's
// domain-specialization stage (box 2) relative to a bare query.
func BenchmarkAblationContext(b *testing.B) {
	g := benchGraph(80, 80)
	w := traffic.NewWrapper(g)
	q, _ := queries.ByID("ta-h1")
	full := prompt.BuildCodePrompt(w, prompt.BackendNetworkX, q.Text)
	bare := q.Text
	b.ReportMetric(float64(tokens.Count(full)), "prompt-tokens-with-context")
	b.ReportMetric(float64(tokens.Count(bare)), "prompt-tokens-bare")
	for i := 0; i < b.N; i++ {
		tokens.Count(full)
	}
}

// BenchmarkAblationSandboxLimits measures containment latency for runaway
// generated code under different step budgets.
func BenchmarkAblationSandboxLimits(b *testing.B) {
	for _, steps := range []int{10_000, 100_000, 1_000_000} {
		b.Run(fmt.Sprintf("steps=%d", steps), func(b *testing.B) {
			policy := sandbox.DefaultPolicy
			policy.MaxSteps = steps
			for i := 0; i < b.N; i++ {
				res := sandbox.Run("while true { }", nil, policy)
				if res.OK() {
					b.Fatal("runaway not contained")
				}
			}
		})
	}
}

// BenchmarkAblationTrials measures the cost of Bard's 5-trial averaging
// versus single-shot evaluation on one MALT query.
func BenchmarkAblationTrials(b *testing.B) {
	ev := nemoeval.NewEvaluator(nemoeval.MALTDataset())
	model, err := llm.NewSim("bard")
	if err != nil {
		b.Fatal(err)
	}
	q, _ := queries.ByID("malt-e1")
	for _, trials := range []int{1, 5} {
		b.Run(fmt.Sprintf("trials=%d", trials), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for t := 1; t <= trials; t++ {
					ev.EvaluateModel(model, q, prompt.BackendNetworkX, t, 0)
				}
			}
		})
	}
}

// BenchmarkAblationGraphScale shows code-generation evaluation latency is
// insensitive to network size (the paper's scalability property), by
// evaluating the same query at growing scales.
func BenchmarkAblationGraphScale(b *testing.B) {
	model, err := llm.NewSim("gpt-4")
	if err != nil {
		b.Fatal(err)
	}
	q, _ := queries.ByID("ta-e5")
	for _, n := range []int{80, 200, 400} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			ev := nemoeval.NewEvaluator(nemoeval.TrafficDataset(traffic.Config{Nodes: n, Edges: n, Seed: 42}))
			for i := 0; i < b.N; i++ {
				rec := ev.EvaluateModel(model, q, prompt.BackendNetworkX, 1, 0)
				if !rec.Pass {
					b.Fatal(rec.Err)
				}
			}
		})
	}
}

// BenchmarkEndToEndAsk measures one full Ask round through the public API.
func BenchmarkEndToEndAsk(b *testing.B) {
	model, err := llm.NewSim("gpt-4")
	if err != nil {
		b.Fatal(err)
	}
	q, _ := queries.ByID("ta-e5")
	ev := nemoeval.NewEvaluator(nemoeval.TrafficDataset(nemoeval.DefaultTrafficConfig))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := ev.EvaluateModel(model, q, prompt.BackendNetworkX, 1, 0)
		if !rec.Pass {
			b.Fatal(rec.Err)
		}
	}
}

// sanity: the sqldb package is exercised via traffic.Database above; keep a
// direct reference so the import list stays honest if benches change.
var _ = sqldb.NewDB

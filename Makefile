# Build/verify/benchmark entry points. `make verify` is the tier-1 gate
# (build + vet + tests); `make lint` adds the NQL registry vet (nqlvet
# over every golden program x backend) and staticcheck when installed;
# `make bench` records the benchmark suite as JSON so successive PRs can
# track the perf trajectory (BENCH_10.json for this PR, bump BENCH_OUT for
# the next); `make benchdiff` compares the two most recent snapshots and
# fails on >10% regressions of ns/op, B/op or allocs/op (tail latency is
# gated at a wider p99 threshold — see cmd/benchdiff) on the ROADMAP
# watchlist (Table2 / Table4 / Clone / PageRank /
# SandboxGoldenQuery / NQLVM / StreamSweep / GatewayThroughput /
# ServiceQuery / FederatedJoin / FederatedGoldenQuery).

GO        ?= go
BENCH_OUT ?= BENCH_10.json

# One pinned staticcheck for local lint and CI: an unpinned @latest can
# start flagging new checks the day a release lands and break CI with no
# repo change. Bump deliberately, in a PR that also fixes what it flags.
STATICCHECK_VERSION ?= 2024.1.1

.PHONY: verify test lint install-staticcheck race bench bench-quick benchdiff

verify:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test ./...

test:
	$(GO) test ./...

# Static analysis beyond vet: the NQL semantic analyzer over every golden
# program x backend in the query catalog (any error-severity finding fails
# the target), then staticcheck over the Go code. staticcheck is optional
# locally (the CI job installs the pinned version via install-staticcheck);
# the target degrades gracefully with a notice when absent.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/nqlvet -registry
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipped (make install-staticcheck)"; \
	fi

install-staticcheck:
	$(GO) install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)

# Race-exercise the concurrent evaluation pipeline and its substrates
# (includes the stream/shard sweep's parallel aggregation and PageRank,
# the model-serving gateway's batching/rate-limit/retry scheduler, and the
# netqueryd service's chaos suite — swap under load, client disconnects,
# backend stalls, tenant isolation, and the burn-rate alert full loop
# against the SLO engine in internal/obs/health).
race:
	$(GO) test -race ./internal/nemoeval ./internal/graph ./internal/nql ./internal/nql/analysis ./internal/sandbox ./internal/nqlbind ./internal/traffic ./internal/modelserve ./internal/federate ./internal/limiter ./internal/service ./internal/obs ./internal/obs/health

# Record the benchmark suite as test2json records for tooling: the macro
# benchmarks (whole tables/figures/ablations) run one iteration, while the
# substrate micro-benchmarks run long enough for stable ns/op — at a single
# iteration they swing far beyond the 10% regression gate benchdiff applies.
# The micro pass records repeated runs per benchmark and benchdiff keeps the
# per-metric minimum (median for p99-ns, where a lucky run deflates the tail
# and a min baseline would be the luckiest tail ever seen), so transient
# co-tenant load on shared hardware cannot fake a regression (or mask one by
# inflating the baseline). Every gated
# benchmark short enough to repeat belongs in the micro pass for that
# reason (GatewayThroughput moved there after its 1x sample flapped);
# StreamSweep and the tables stay at 1x per record because one iteration
# already runs hundreds of milliseconds, but record repeatedly so the min
# discards noisy passes. Counts were raised (micro 5->9, macro 3->5) after
# a single-CPU host showed sustained multi-minute slow windows: the min
# must span at least one fast window of the box or back-to-back recordings
# of *identical* code diff at +10-20%.
bench:
	$(GO) test -run '^$$' -bench 'Table|Figure|Ablation|EndToEnd|StreamSweep' -benchmem -benchtime=1x -count=5 -json . | tee $(BENCH_OUT)
	$(GO) test -run '^$$' -bench 'Graph|Dataframe|SQL|NQL|Sandbox|Federated|Token|ObsOverhead|GatewayThroughput' -benchmem -benchtime=0.5s -count=9 -json . | tee -a $(BENCH_OUT)
	$(GO) test -run '^$$' -bench 'ServiceQuery' -benchmem -benchtime=0.5s -count=5 -json ./internal/service | tee -a $(BENCH_OUT)

# Stable-ish numbers for the substrate micro-benchmarks only.
bench-quick:
	$(GO) test -run '^$$' -bench 'Graph|Sandbox|Token|NQL|Federated' -benchmem -benchtime=1s .

# Compare the two most recent BENCH_<n>.json snapshots; exits non-zero on a
# >10% regression of a watched benchmark. Caveat: BENCH_1.json predates the
# stable micro pass above — its micro numbers are single-iteration samples,
# so the 1->2 comparison is looser than every later stable-vs-stable one.
benchdiff:
	$(GO) run ./cmd/benchdiff

# Build/verify/benchmark entry points. `make verify` is the tier-1 gate
# (build + vet + tests); `make bench` records the benchmark suite as JSON
# so successive PRs can track the perf trajectory (BENCH_1.json for this
# PR, bump BENCH_OUT for the next).

GO        ?= go
BENCH_OUT ?= BENCH_1.json

.PHONY: verify test race bench bench-quick

verify:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test ./...

test:
	$(GO) test ./...

# Race-exercise the concurrent evaluation pipeline and its substrates.
race:
	$(GO) test -race ./internal/nemoeval ./internal/graph ./internal/nql ./internal/sandbox ./internal/nqlbind

# One iteration of every benchmark (tables, figures, micro-benchmarks),
# streamed as test2json records for tooling.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime=1x -json . | tee $(BENCH_OUT)

# Stable-ish numbers for the substrate micro-benchmarks only.
bench-quick:
	$(GO) test -run '^$$' -bench 'Graph|Sandbox|Token|NQL' -benchmem -benchtime=1s .

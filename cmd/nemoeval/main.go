// Command nemoeval runs the NeMoEval benchmark and regenerates the paper's
// tables and figures.
//
// Usage:
//
//	nemoeval -table 2          # accuracy summary (Table 2)
//	nemoeval -table 3          # traffic-analysis breakdown (Table 3)
//	nemoeval -table 4          # MALT breakdown (Table 4)
//	nemoeval -table 5          # error taxonomy (Table 5)
//	nemoeval -table 6          # pass@k / self-debug case study (Table 6)
//	nemoeval -figure 4a        # cost CDF (Figure 4a)
//	nemoeval -figure 4b        # cost vs graph size (Figure 4b)
//	nemoeval -federated        # federated-vs-per-backend golden parity
//	nemoeval -all              # everything
//	nemoeval -all -log out.jsonl   # also dump evaluation records
//	nemoeval -table 2 -workers 4   # bound the evaluation worker pool
//	nemoeval -table 4 -cpuprofile cpu.out -memprofile mem.out
//	nemoeval -table 2 -engine interp   # force the reference NQL engine
//	nemoeval -stream -shards 8     # streamed, sharded Figure-4-scale sweep
//	nemoeval -stream -stream-nodes 10000 -stream-edges 100000 -stream-seed 42
//
// The -stream sweep builds the configured graph as a seeded edge stream
// partitioned into -shards frozen per-shard masters, aggregates shards over
// the worker pool, and prints the merged degree/component/PageRank report —
// byte-identical for any -shards and -workers values.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/nemoeval"
	"repro/internal/nql"
	"repro/internal/synthesis"
	"repro/internal/traffic"
)

func main() { os.Exit(run()) }

// run carries the whole command so deferred cleanups (profile writers, log
// files) execute before the process exits, unlike os.Exit in main.
func run() int {
	table := flag.String("table", "", "regenerate one table (2-6)")
	figure := flag.String("figure", "", "regenerate one figure (4a, 4b)")
	all := flag.Bool("all", false, "regenerate every table and figure")
	federated := flag.Bool("federated", false, "cross-check federated plans against per-backend goldens")
	workers := flag.Int("workers", 0, "evaluation worker pool size (0 = NumCPU, 1 = serial)")
	logPath := flag.String("log", "", "write evaluation records as JSON lines")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	engine := flag.String("engine", "vm", "NQL execution engine: vm (bytecode, default) or interp (reference tree-walker)")
	stream := flag.Bool("stream", false, "run the streamed, sharded dataset sweep instead of a table/figure")
	shards := flag.Int("shards", 1, "shard count for -stream (1 = unsharded)")
	streamNodes := flag.Int("stream-nodes", 10000, "node count for -stream")
	streamEdges := flag.Int("stream-edges", 100000, "edge count for -stream")
	streamSeed := flag.Int64("stream-seed", 42, "generator seed for -stream")
	flag.Parse()

	if !*all && *table == "" && *figure == "" && !*federated && !*stream {
		flag.Usage()
		return 2
	}

	switch *engine {
	case "vm":
		nql.DefaultEngine = nql.EngineVM
	case "interp":
		nql.DefaultEngine = nql.EngineInterp
	default:
		fmt.Fprintf(os.Stderr, "error: unknown -engine %q (want vm or interp)\n", *engine)
		return 2
	}

	// Profiling hooks so perf PRs can attach pprof evidence without
	// editing code: the CPU profile covers everything after this point;
	// the heap profile snapshots live allocations after a final GC.
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
			}
		}()
	}

	runner := nemoeval.NewRunner()
	runner.Workers = *workers
	emit := func(s string, err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Println(s)
	}

	if *stream {
		cfg := traffic.Config{Nodes: *streamNodes, Edges: *streamEdges, Seed: *streamSeed}
		fmt.Fprintf(os.Stderr, "stream sweep: %d nodes, %d edges, %d shard(s)\n", cfg.Nodes, cfg.Edges, *shards)
		emit(runner.StreamSweep(cfg, *shards))
	}

	want := func(id string) bool { return *all || *table == id || *figure == id }

	if want("2") {
		emit(runner.Table2())
	}
	if want("3") {
		emit(runner.Table3())
	}
	if want("4") {
		emit(runner.Table4())
	}
	if want("5") {
		emit(runner.Table5())
	}
	if want("6") {
		cs, err := synthesis.RunCaseStudy()
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return 1
		}
		fmt.Printf("Table 6: Improvement Cases with Bard on MALT (NetworkX)\n")
		fmt.Printf("%-16s %-16s %s\n", "Bard + Pass@1", "Bard + Pass@5", "Bard + Self-debug")
		fmt.Printf("%-16.2f %-16.2f %.2f\n\n", cs.Pass1, cs.Pass5, cs.SelfDebug)
	}
	if want("4a") {
		emit(nemoeval.Figure4a())
	}
	if want("4b") {
		emit(nemoeval.Figure4b())
	}
	// A parity violation must still exit non-zero, but only after the log
	// dump below — the records of the full run are too expensive to lose.
	var parityErr error
	if *federated || *all {
		report, err := runner.FederatedParityReport()
		fmt.Println(report)
		parityErr = err
	}

	if *logPath != "" {
		f, err := os.Create(*logPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return 1
		}
		defer f.Close()
		if err := runner.Log.WriteJSONL(f); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "wrote %d records to %s (%s)\n", runner.Log.Len(), *logPath, runner.Log.Summary())
	}
	if parityErr != nil {
		fmt.Fprintln(os.Stderr, "error:", parityErr)
		return 1
	}
	return 0
}

// Command nemoeval runs the NeMoEval benchmark and regenerates the paper's
// tables and figures.
//
// Usage:
//
//	nemoeval -table 2          # accuracy summary (Table 2)
//	nemoeval -table 3          # traffic-analysis breakdown (Table 3)
//	nemoeval -table 4          # MALT breakdown (Table 4)
//	nemoeval -table 5          # error taxonomy (Table 5)
//	nemoeval -table 6          # pass@k / self-debug case study (Table 6)
//	nemoeval -figure 4a        # cost CDF (Figure 4a)
//	nemoeval -figure 4b        # cost vs graph size (Figure 4b)
//	nemoeval -federated        # federated-vs-per-backend golden parity
//	nemoeval -all              # everything
//	nemoeval -all -log out.jsonl   # also dump evaluation records
//	nemoeval -table 2 -workers 4   # bound the evaluation worker pool
//	nemoeval -table 4 -cpuprofile cpu.out -memprofile mem.out
//	nemoeval -table 2 -engine interp   # force the reference NQL engine
//	nemoeval -stream -shards 8     # streamed, sharded Figure-4-scale sweep
//	nemoeval -stream -stream-nodes 10000 -stream-edges 100000 -stream-seed 42
//	nemoeval -table 2 -provider sim                 # route the matrix through the gateway
//	nemoeval -all -provider sim -record run1/       # record every generation
//	nemoeval -all -provider replay -replay run1/    # replay it byte-identically
//	nemoeval -table 5 -provider http -http-base http://localhost:8000/v1 \
//	         -http-header "Authorization: Bearer $KEY" -rps 4 -tpm 90000 -retries 5
//
// The -stream sweep builds the configured graph as a seeded edge stream
// partitioned into -shards frozen per-shard masters, aggregates shards over
// the worker pool, and prints the merged degree/component/PageRank report —
// byte-identical for any -shards and -workers values.
//
// -provider selects the model-serving path (internal/modelserve): "sim"
// fronts the calibrated simulations with the batching/rate-limited
// gateway, "http" targets any OpenAI-compatible chat-completions endpoint,
// and "replay" serves a -record'ed run back with zero provider calls.
// Table and figure stdout is byte-identical across providers that answer
// identically (sim vs recorded-sim replay); the per-run gateway statistics
// go to stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"

	"repro/internal/modelserve"
	"repro/internal/nemoeval"
	"repro/internal/nql"
	"repro/internal/nql/analysis"
	"repro/internal/synthesis"
	"repro/internal/traffic"
)

func main() { os.Exit(run()) }

// headerFlags collects repeatable "-http-header 'Name: value'" flags.
type headerFlags map[string]string

func (h headerFlags) String() string { return fmt.Sprintf("%v", map[string]string(h)) }

func (h headerFlags) Set(s string) error {
	name, value, ok := strings.Cut(s, ":")
	if !ok || strings.TrimSpace(name) == "" {
		return fmt.Errorf("want \"Name: value\", got %q", s)
	}
	h[strings.TrimSpace(name)] = strings.TrimSpace(value)
	return nil
}

// run carries the whole command so deferred cleanups (profile writers, log
// files) execute before the process exits, unlike os.Exit in main.
func run() int {
	table := flag.String("table", "", "regenerate one table (2-6)")
	figure := flag.String("figure", "", "regenerate one figure (4a, 4b)")
	all := flag.Bool("all", false, "regenerate every table and figure")
	federated := flag.Bool("federated", false, "cross-check federated plans against per-backend goldens")
	workers := flag.Int("workers", 0, "evaluation worker pool size (0 = NumCPU, 1 = serial)")
	logPath := flag.String("log", "", "write evaluation records as JSON lines")
	vet := flag.Bool("vet", false, "after the run, print static-diagnostic counts for generated programs to stderr")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	engine := flag.String("engine", "vm", "NQL execution engine: vm (bytecode, default) or interp (reference tree-walker)")
	stream := flag.Bool("stream", false, "run the streamed, sharded dataset sweep instead of a table/figure")
	shards := flag.Int("shards", 1, "shard count for -stream (1 = unsharded)")
	streamNodes := flag.Int("stream-nodes", 10000, "node count for -stream")
	streamEdges := flag.Int("stream-edges", 100000, "edge count for -stream")
	streamSeed := flag.Int64("stream-seed", 42, "generator seed for -stream")
	provider := flag.String("provider", "", "model-serving provider: sim, http or replay (default: in-process sims, no gateway)")
	record := flag.String("record", "", "record provider responses into this directory (requires -provider sim or http)")
	replay := flag.String("replay", "", "replay cache directory for -provider replay")
	rps := flag.Float64("rps", 0, "gateway per-model requests/sec limit (0 = unlimited)")
	tpm := flag.Float64("tpm", 0, "gateway per-model tokens/min limit (0 = unlimited)")
	retries := flag.Int("retries", 3, "gateway retry budget for transient provider failures")
	batch := flag.Int("batch", 8, "gateway max coalesced batch size (1 disables batching)")
	httpBase := flag.String("http-base", "", "base URL for -provider http (OpenAI-compatible, e.g. http://host:8000/v1)")
	httpHeaders := headerFlags{}
	flag.Var(httpHeaders, "http-header", "extra header for -provider http as \"Name: value\" (repeatable)")
	flag.Parse()

	if !*all && *table == "" && *figure == "" && !*federated && !*stream {
		flag.Usage()
		return 2
	}

	// Validate flag combinations up front: a long evaluation run must not
	// discover a bad flag an hour in, and no combination may silently
	// degrade to a default the operator did not pick.
	fail := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, "error: "+format+"\n", args...)
		return 2
	}
	switch *engine {
	case "vm", "interp":
	default:
		return fail("unknown -engine %q (want vm or interp)", *engine)
	}
	if *table != "" {
		switch *table {
		case "2", "3", "4", "5", "6":
		default:
			return fail("unknown -table %q (want 2-6)", *table)
		}
	}
	if *figure != "" && *figure != "4a" && *figure != "4b" {
		return fail("unknown -figure %q (want 4a or 4b)", *figure)
	}
	if *workers < 0 {
		return fail("-workers must be >= 0, got %d", *workers)
	}
	if *stream {
		if *shards < 1 {
			return fail("-shards must be >= 1, got %d", *shards)
		}
		if *streamNodes < 2 {
			return fail("-stream-nodes must be >= 2, got %d", *streamNodes)
		}
		if *streamEdges < 0 {
			return fail("-stream-edges must be >= 0, got %d", *streamEdges)
		}
	} else if *shards != 1 {
		return fail("-shards only applies to -stream runs")
	}
	switch *provider {
	case "", "sim", "http", "replay":
	default:
		return fail("unknown -provider %q (want sim, http or replay)", *provider)
	}
	if *record != "" && *provider == "" {
		return fail("-record needs a provider to record from: add -provider sim or -provider http")
	}
	if *record != "" && *provider == "replay" {
		return fail("-record cannot wrap -provider replay (a replay run issues no new generations)")
	}
	if *provider == "replay" && *replay == "" {
		return fail("-provider replay needs -replay <dir> (a directory recorded with -record)")
	}
	if *replay != "" && *provider != "replay" {
		return fail("-replay requires -provider replay (use -record <dir> to capture a run)")
	}
	if *provider == "http" && *httpBase == "" {
		return fail("-provider http needs -http-base <url>")
	}
	if (*httpBase != "" || len(httpHeaders) > 0) && *provider != "http" {
		return fail("-http-base/-http-header require -provider http")
	}
	if *rps < 0 || *tpm < 0 {
		return fail("-rps and -tpm must be >= 0, got %g and %g", *rps, *tpm)
	}
	if *retries < 0 {
		return fail("-retries must be >= 0, got %d", *retries)
	}
	if *batch < 1 {
		return fail("-batch must be >= 1, got %d", *batch)
	}
	if *provider == "" {
		// Gateway knobs without a gateway must not silently do nothing;
		// flag.Visit distinguishes an explicit -retries 3 from its default.
		gatewayFlags := map[string]bool{"rps": true, "tpm": true, "retries": true, "batch": true, "http-header": true}
		var set []string
		flag.Visit(func(f *flag.Flag) {
			if gatewayFlags[f.Name] {
				set = append(set, "-"+f.Name)
			}
		})
		if len(set) > 0 {
			return fail("%s only apply to the serving gateway: add -provider sim, http or replay", strings.Join(set, "/"))
		}
	}

	switch *engine {
	case "vm":
		nql.DefaultEngine = nql.EngineVM
	case "interp":
		nql.DefaultEngine = nql.EngineInterp
	}

	// Profiling hooks so perf PRs can attach pprof evidence without
	// editing code: the CPU profile covers everything after this point;
	// the heap profile snapshots live allocations after a final GC.
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
			}
		}()
	}

	runner := nemoeval.NewRunner()
	runner.Workers = *workers
	if *provider != "" {
		var p modelserve.Provider
		var err error
		switch *provider {
		case "sim":
			p = modelserve.NewSimProvider()
		case "http":
			p = &modelserve.HTTPProvider{BaseURL: *httpBase, Headers: httpHeaders}
		case "replay":
			p, err = modelserve.NewReplay(*replay)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return 1
		}
		if *record != "" {
			if p, err = modelserve.NewRecorder(p, *record); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				return 1
			}
		}
		maxRetries := *retries
		if maxRetries == 0 {
			maxRetries = -1 // Config's "disable retries" spelling
		}
		gw, err := modelserve.New(modelserve.Config{
			Provider: p, BatchSize: *batch, RPS: *rps, TPM: *tpm, MaxRetries: maxRetries,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return 1
		}
		runner.Provider = gw
		// Stats go to stderr after everything else: stdout must stay
		// byte-identical across providers (the replay parity contract).
		defer func() {
			if report := runner.GatewayReport(); report != "" {
				fmt.Fprintln(os.Stderr, report)
			}
		}()
		// Table 6 and Figures 4a/4b are built on the oracle-driven
		// simulations (pass@k calibration sequences, strawman baselines);
		// they never consult the provider. Say so rather than let a
		// live-provider run silently mix in simulated artifacts.
		if *all || *table == "6" || *figure != "" {
			fmt.Fprintln(os.Stderr, "note: table 6 and figures 4a/4b always run on in-process simulations; -provider applies to tables 2-5")
		}
	}
	emit := func(s string, err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Println(s)
	}

	if *stream {
		cfg := traffic.Config{Nodes: *streamNodes, Edges: *streamEdges, Seed: *streamSeed}
		fmt.Fprintf(os.Stderr, "stream sweep: %d nodes, %d edges, %d shard(s)\n", cfg.Nodes, cfg.Edges, *shards)
		emit(runner.StreamSweep(cfg, *shards))
	}

	want := func(id string) bool { return *all || *table == id || *figure == id }

	if want("2") {
		emit(runner.Table2())
	}
	if want("3") {
		emit(runner.Table3())
	}
	if want("4") {
		emit(runner.Table4())
	}
	if want("5") {
		emit(runner.Table5())
	}
	if want("6") {
		cs, err := synthesis.RunCaseStudy()
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return 1
		}
		fmt.Printf("Table 6: Improvement Cases with Bard on MALT (NetworkX)\n")
		fmt.Printf("%-16s %-16s %s\n", "Bard + Pass@1", "Bard + Pass@5", "Bard + Self-debug")
		fmt.Printf("%-16.2f %-16.2f %.2f\n\n", cs.Pass1, cs.Pass5, cs.SelfDebug)
	}
	if want("4a") {
		emit(nemoeval.Figure4a())
	}
	if want("4b") {
		emit(nemoeval.Figure4b())
	}
	// A parity violation must still exit non-zero, but only after the log
	// dump below — the records of the full run are too expensive to lose.
	var parityErr error
	if *federated || *all {
		report, err := runner.FederatedParityReport()
		fmt.Println(report)
		parityErr = err
	}

	if *logPath != "" {
		f, err := os.Create(*logPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return 1
		}
		defer f.Close()
		if err := runner.Log.WriteJSONL(f); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "wrote %d records to %s (%s)\n", runner.Log.Len(), *logPath, runner.Log.Summary())
	}
	if *vet {
		fmt.Fprint(os.Stderr, vetReport(runner.Log.Records()))
	}
	if parityErr != nil {
		fmt.Fprintln(os.Stderr, "error:", parityErr)
		return 1
	}
	return 0
}

// vetReport aggregates the semantic analyzer's findings over every
// generated program the run evaluated, keyed by diagnostic code. It is a
// diagnostic lens on the LLM-generated corpus — strictly stderr, so table
// and figure stdout stays byte-identical with and without -vet.
func vetReport(records []*nemoeval.Record) string {
	programs := 0
	counts := map[string]int{}
	severity := map[string]string{}
	for _, r := range records {
		if r.Code == "" {
			continue
		}
		programs++
		prog, err := nql.Parse(r.Code)
		if err != nil {
			d := analysis.SyntaxDiagnostic(err)
			counts[d.Code]++
			severity[d.Code] = d.Severity.String()
			continue
		}
		for _, d := range analysis.Analyze(prog, analysis.Options{Globals: nemoeval.StaticGlobals(r.Backend)}) {
			counts[d.Code]++
			severity[d.Code] = d.Severity.String()
		}
	}
	codes := make([]string, 0, len(counts))
	for c := range counts {
		codes = append(codes, c)
	}
	sort.Strings(codes)
	var sb strings.Builder
	fmt.Fprintf(&sb, "static analysis: %d generated programs vetted\n", programs)
	if len(codes) == 0 {
		sb.WriteString("  no diagnostics\n")
		return sb.String()
	}
	for _, c := range codes {
		fmt.Fprintf(&sb, "  %s (%s): %d\n", c, severity[c], counts[c])
	}
	return sb.String()
}

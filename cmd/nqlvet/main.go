// Command nqlvet runs the NQL semantic analyzer (internal/nql/analysis)
// over programs and reports diagnostics in a compiler-style format:
//
//	nqlvet prog.nql other.nql      # vet files, surface-independent rules only
//	nqlvet -backend sql prog.nql   # also resolve names against one backend surface
//	nqlvet -registry               # vet every golden program × backend in the
//	                               # query catalog (the CI gate)
//
// Exit status is 1 when any error-severity finding is reported, 2 on
// usage errors, and 0 otherwise. Warnings are printed but never fail the
// run — the analyzer's advisory rules must not block programs the
// evaluation matrix executes successfully.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/nemoeval"
	"repro/internal/nql"
	"repro/internal/nql/analysis"
	"repro/internal/prompt"
	"repro/internal/queries"
)

func main() { os.Exit(run()) }

func run() int {
	registry := flag.Bool("registry", false, "vet every golden program x backend in the query catalog")
	backend := flag.String("backend", "", "resolve names against one backend surface (sql, pandas, networkx, federated)")
	flag.Parse()

	if *registry {
		if flag.NArg() > 0 || *backend != "" {
			fmt.Fprintln(os.Stderr, "error: -registry takes no files and no -backend (it checks every backend)")
			return 2
		}
		return vetRegistry()
	}
	if flag.NArg() == 0 {
		flag.Usage()
		return 2
	}
	if *backend != "" && nemoeval.StaticGlobals(*backend) == nil {
		fmt.Fprintf(os.Stderr, "error: unknown -backend %q (want sql, pandas, networkx or federated)\n", *backend)
		return 2
	}

	exit := 0
	for _, path := range flag.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return 2
		}
		diags := vetSource(string(src), nemoeval.StaticGlobals(*backend))
		for _, d := range diags {
			fmt.Printf("%s:%s\n", path, render(d))
			if d.Severity == analysis.Error {
				exit = 1
			}
		}
	}
	return exit
}

// vetSource runs parse + analyze over one program. A parse failure comes
// back as the single NQ001 diagnostic; globals == nil leaves the
// name-resolution rules off.
func vetSource(src string, globals map[string]analysis.Type) []analysis.Diagnostic {
	prog, err := nql.Parse(src)
	if err != nil {
		return []analysis.Diagnostic{analysis.SyntaxDiagnostic(err)}
	}
	return analysis.Analyze(prog, analysis.Options{Globals: globals})
}

// vetRegistry checks every golden program against the surface of the
// backend it is written for: the whole catalog, every backend, in one
// deterministic pass. Any error-severity finding fails CI.
func vetRegistry() int {
	all := queries.All()
	sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
	programs, errs, warns := 0, 0, 0
	for _, q := range all {
		for _, b := range prompt.AllBackends {
			src, ok := q.Golden[b]
			if !ok {
				continue
			}
			programs++
			for _, d := range vetSource(src, nemoeval.StaticGlobals(b)) {
				fmt.Printf("%s/%s:%s\n", q.ID, b, render(d))
				if d.Severity == analysis.Error {
					errs++
				} else {
					warns++
				}
			}
		}
	}
	fmt.Fprintf(os.Stderr, "nqlvet: %d programs, %d errors, %d warnings\n", programs, errs, warns)
	if errs > 0 {
		return 1
	}
	return 0
}

// render formats one diagnostic as "line: severity[CODE] message" so the
// caller can prefix its own location (path or query/backend).
func render(d analysis.Diagnostic) string {
	return fmt.Sprintf("%d: %s[%s] %s", d.Line, d.Severity, d.Code, d.Message)
}

// Command netqueryd serves network queries over HTTP: a fault-tolerant,
// multi-tenant front end to the evaluation framework's datasets (see
// internal/service). Every request runs a sandboxed NQL program against a
// fresh clone of the current dataset epoch, under admission control, a
// propagated deadline, and per-substrate circuit breaking; datasets can be
// swapped live with zero dropped queries, and SIGINT/SIGTERM drain
// gracefully.
//
// Usage:
//
//	netqueryd [-addr :8090] [-app traffic|malt|diagnosis]
//	          [-nodes 80] [-edges 80] [-seed 42]
//	          [-tenant-rps 50] [-tenant-burst 16] [-tenant-concurrency 8]
//	          [-default-timeout 2s] [-max-timeout 10s]
//	          [-breaker-threshold 5] [-breaker-cooldown 1s]
//	          [-trace-sample 0] [-pprof]
//
// Endpoints: POST /v1/query, POST /admin/swap, GET /healthz, GET /statsz,
// GET /metricsz (Prometheus text), GET /tracez (sampled traces), and — with
// -pprof — GET /debug/pprof/*. See doc.go in internal/service for the
// runbook.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/diagnosis"
	"repro/internal/nemoeval"
	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	app := flag.String("app", "traffic", "initial dataset: traffic, malt or diagnosis")
	nodes := flag.Int("nodes", 80, "traffic graph nodes")
	edges := flag.Int("edges", 80, "traffic graph edges")
	seed := flag.Int64("seed", 42, "traffic workload seed")
	tenantRPS := flag.Float64("tenant-rps", 50, "per-tenant admitted requests/sec")
	tenantBurst := flag.Float64("tenant-burst", 16, "per-tenant request burst")
	tenantConc := flag.Int("tenant-concurrency", 8, "per-tenant in-flight query cap (-1 unlimited)")
	defTimeout := flag.Duration("default-timeout", 2*time.Second, "deadline for requests without one")
	maxTimeout := flag.Duration("max-timeout", 10*time.Second, "cap on client-requested deadlines")
	brThreshold := flag.Int("breaker-threshold", 5, "consecutive timeouts tripping a substrate breaker")
	brCooldown := flag.Duration("breaker-cooldown", time.Second, "how long a tripped breaker stays open")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "shutdown drain budget")
	traceSample := flag.Float64("trace-sample", 0, "fraction of requests to trace (0 disables, 1 traces all)")
	pprofOn := flag.Bool("pprof", false, "mount /debug/pprof handlers")
	flag.Parse()

	os.Exit(run(*addr, *app, *nodes, *edges, *seed, *tenantRPS, *tenantBurst, *tenantConc,
		*defTimeout, *maxTimeout, *brThreshold, *brCooldown, *drainTimeout, *traceSample, *pprofOn))
}

func run(addr, app string, nodes, edges int, seed int64, tenantRPS, tenantBurst float64,
	tenantConc int, defTimeout, maxTimeout time.Duration, brThreshold int,
	brCooldown, drainTimeout time.Duration, traceSample float64, pprofOn bool) int {
	fail := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, "error: "+format+"\n", args...)
		return 2
	}
	// Fail fast on nonsense flags rather than surfacing them as runtime
	// misbehaviour deep in the service.
	if nodes <= 0 || edges < 0 {
		return fail("-nodes must be > 0 and -edges >= 0 (got %d, %d)", nodes, edges)
	}
	if tenantRPS <= 0 || tenantBurst <= 0 {
		return fail("-tenant-rps and -tenant-burst must be > 0 (got %g, %g)", tenantRPS, tenantBurst)
	}
	if defTimeout <= 0 || maxTimeout <= 0 || defTimeout > maxTimeout {
		return fail("need 0 < -default-timeout <= -max-timeout (got %v, %v)", defTimeout, maxTimeout)
	}
	if brThreshold <= 0 || brCooldown <= 0 {
		return fail("-breaker-threshold and -breaker-cooldown must be > 0 (got %d, %v)", brThreshold, brCooldown)
	}
	if drainTimeout <= 0 {
		return fail("-drain-timeout must be > 0 (got %v)", drainTimeout)
	}
	if traceSample < 0 || traceSample > 1 {
		return fail("-trace-sample must be in [0, 1] (got %g)", traceSample)
	}

	var (
		builder nemoeval.InstanceBuilder
		name    string
	)
	switch app {
	case "traffic":
		builder, name = service.TrafficBuilder(nodes, edges, seed)
	case "malt":
		builder, name = nemoeval.MALTDataset(), "malt"
	case "diagnosis":
		builder, name = nemoeval.DiagnosisDataset(diagnosis.DefaultConfig), "diagnosis"
	default:
		return fail("unknown app %q (have traffic, malt, diagnosis)", app)
	}

	svc, err := service.New(service.Config{
		Dataset:           builder,
		DatasetName:       name,
		TenantRPS:         tenantRPS,
		TenantBurst:       tenantBurst,
		TenantConcurrency: tenantConc,
		DefaultTimeout:    defTimeout,
		MaxTimeout:        maxTimeout,
		BreakerThreshold:  brThreshold,
		BreakerCooldown:   brCooldown,
		TraceSample:       traceSample,
	})
	if err != nil {
		return fail("%v", err)
	}

	mux := http.NewServeMux()
	mux.Handle("/", service.NewHandler(svc))
	if pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}

	server := &http.Server{Addr: addr, Handler: mux}
	go func() {
		log.Printf("netqueryd: serving %s on %s", name, addr)
		if err := server.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()

	// Graceful drain: stop accepting, let in-flight queries finish, then
	// exit. A second signal aborts the drain.
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	<-sigs
	log.Printf("netqueryd: draining (up to %s)...", drainTimeout)
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	go func() {
		<-sigs
		cancel()
	}()
	if err := server.Shutdown(ctx); err != nil {
		log.Printf("netqueryd: http shutdown: %v", err)
	}
	if err := svc.Drain(ctx); err != nil {
		log.Printf("netqueryd: drain: %v", err)
	}
	log.Printf("netqueryd: done")
	return 0
}

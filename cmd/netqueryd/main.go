// Command netqueryd serves network queries over HTTP: a fault-tolerant,
// multi-tenant front end to the evaluation framework's datasets (see
// internal/service). Every request runs a sandboxed NQL program against a
// fresh clone of the current dataset epoch, under admission control, a
// propagated deadline, and per-substrate circuit breaking; datasets can be
// swapped live with zero dropped queries, and SIGINT/SIGTERM drain
// gracefully.
//
// Usage:
//
//	netqueryd [-addr :8090] [-app traffic|malt|diagnosis]
//	          [-nodes 80] [-edges 80] [-seed 42]
//	          [-tenant-rps 50] [-tenant-burst 16] [-tenant-concurrency 8]
//	          [-default-timeout 2s] [-max-timeout 10s]
//	          [-breaker-threshold 5] [-breaker-cooldown 1s]
//
// Endpoints: POST /v1/query, POST /admin/swap, GET /healthz, GET /statsz.
// See doc.go in internal/service for the runbook.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/diagnosis"
	"repro/internal/nemoeval"
	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	app := flag.String("app", "traffic", "initial dataset: traffic, malt or diagnosis")
	nodes := flag.Int("nodes", 80, "traffic graph nodes")
	edges := flag.Int("edges", 80, "traffic graph edges")
	seed := flag.Int64("seed", 42, "traffic workload seed")
	tenantRPS := flag.Float64("tenant-rps", 50, "per-tenant admitted requests/sec")
	tenantBurst := flag.Float64("tenant-burst", 16, "per-tenant request burst")
	tenantConc := flag.Int("tenant-concurrency", 8, "per-tenant in-flight query cap (-1 unlimited)")
	defTimeout := flag.Duration("default-timeout", 2*time.Second, "deadline for requests without one")
	maxTimeout := flag.Duration("max-timeout", 10*time.Second, "cap on client-requested deadlines")
	brThreshold := flag.Int("breaker-threshold", 5, "consecutive timeouts tripping a substrate breaker")
	brCooldown := flag.Duration("breaker-cooldown", time.Second, "how long a tripped breaker stays open")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "shutdown drain budget")
	flag.Parse()

	var (
		builder nemoeval.InstanceBuilder
		name    string
	)
	switch *app {
	case "traffic":
		builder, name = service.TrafficBuilder(*nodes, *edges, *seed)
	case "malt":
		builder, name = nemoeval.MALTDataset(), "malt"
	case "diagnosis":
		builder, name = nemoeval.DiagnosisDataset(diagnosis.DefaultConfig), "diagnosis"
	default:
		fmt.Fprintf(os.Stderr, "unknown app %q (have traffic, malt, diagnosis)\n", *app)
		os.Exit(2)
	}

	svc, err := service.New(service.Config{
		Dataset:           builder,
		DatasetName:       name,
		TenantRPS:         *tenantRPS,
		TenantBurst:       *tenantBurst,
		TenantConcurrency: *tenantConc,
		DefaultTimeout:    *defTimeout,
		MaxTimeout:        *maxTimeout,
		BreakerThreshold:  *brThreshold,
		BreakerCooldown:   *brCooldown,
	})
	if err != nil {
		log.Fatal(err)
	}

	server := &http.Server{Addr: *addr, Handler: service.NewHandler(svc)}
	go func() {
		log.Printf("netqueryd: serving %s on %s", name, *addr)
		if err := server.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()

	// Graceful drain: stop accepting, let in-flight queries finish, then
	// exit. A second signal aborts the drain.
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	<-sigs
	log.Printf("netqueryd: draining (up to %s)...", *drainTimeout)
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	go func() {
		<-sigs
		cancel()
	}()
	if err := server.Shutdown(ctx); err != nil {
		log.Printf("netqueryd: http shutdown: %v", err)
	}
	if err := svc.Drain(ctx); err != nil {
		log.Printf("netqueryd: drain: %v", err)
	}
	log.Printf("netqueryd: done")
}

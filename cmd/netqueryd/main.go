// Command netqueryd serves network queries over HTTP: a fault-tolerant,
// multi-tenant front end to the evaluation framework's datasets (see
// internal/service). Every request runs a sandboxed NQL program against a
// fresh clone of the current dataset epoch, under admission control, a
// propagated deadline, and per-substrate circuit breaking; datasets can be
// swapped live with zero dropped queries, and SIGINT/SIGTERM drain
// gracefully. A background health tick evaluates per-tenant and
// per-backend SLOs (multi-window burn rates, surfaced on /sloz) and an
// always-on flight recorder keeps the recent notable requests (/flightz).
//
// Usage:
//
//	netqueryd [-addr :8090] [-app traffic|malt|diagnosis]
//	          [-nodes 80] [-edges 80] [-seed 42]
//	          [-tenant-rps 50] [-tenant-burst 16] [-tenant-concurrency 8]
//	          [-default-timeout 2s] [-max-timeout 10s]
//	          [-breaker-threshold 5] [-breaker-cooldown 1s]
//	          [-trace-sample 0] [-pprof]
//	          [-slo-availability 0.999] [-slo-latency-target 0.99]
//	          [-slo-latency-threshold 250ms] [-slo-tick 10s]
//	          [-flight-capacity 256] [-flight-sample 64]
//	          [-flight-slow-factor 4] [-dump-bundle]
//
// Endpoints: POST /v1/query, POST /admin/swap, GET /healthz (?verbose=1
// adds SLO and cache detail), GET /statsz, GET /metricsz (Prometheus text
// with trace-ID exemplars), GET /sloz (burn rates and alert states),
// GET /tracez (sampled traces, filterable), GET /flightz (flight
// recorder, filterable), GET /debugz/bundle (diagnostic bundle), and —
// with -pprof — GET /debug/pprof/*. -dump-bundle builds the service,
// writes one diagnostic bundle to stdout and exits (a smoke test of the
// whole health layer). See doc.go in internal/service for the runbook.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/diagnosis"
	"repro/internal/nemoeval"
	"repro/internal/service"
)

// options carries every parsed flag into run.
type options struct {
	addr string
	app  string

	nodes int
	edges int
	seed  int64

	tenantRPS   float64
	tenantBurst float64
	tenantConc  int

	defTimeout   time.Duration
	maxTimeout   time.Duration
	brThreshold  int
	brCooldown   time.Duration
	drainTimeout time.Duration
	traceSample  float64
	pprofOn      bool

	sloAvailability float64
	sloLatTarget    float64
	sloLatThreshold time.Duration
	sloTick         time.Duration

	flightCapacity   int
	flightSample     int
	flightSlowFactor float64

	dumpBundle bool
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":8090", "listen address")
	flag.StringVar(&o.app, "app", "traffic", "initial dataset: traffic, malt or diagnosis")
	flag.IntVar(&o.nodes, "nodes", 80, "traffic graph nodes")
	flag.IntVar(&o.edges, "edges", 80, "traffic graph edges")
	flag.Int64Var(&o.seed, "seed", 42, "traffic workload seed")
	flag.Float64Var(&o.tenantRPS, "tenant-rps", 50, "per-tenant admitted requests/sec")
	flag.Float64Var(&o.tenantBurst, "tenant-burst", 16, "per-tenant request burst")
	flag.IntVar(&o.tenantConc, "tenant-concurrency", 8, "per-tenant in-flight query cap (-1 unlimited)")
	flag.DurationVar(&o.defTimeout, "default-timeout", 2*time.Second, "deadline for requests without one")
	flag.DurationVar(&o.maxTimeout, "max-timeout", 10*time.Second, "cap on client-requested deadlines")
	flag.IntVar(&o.brThreshold, "breaker-threshold", 5, "consecutive timeouts tripping a substrate breaker")
	flag.DurationVar(&o.brCooldown, "breaker-cooldown", time.Second, "how long a tripped breaker stays open")
	flag.DurationVar(&o.drainTimeout, "drain-timeout", 30*time.Second, "shutdown drain budget")
	flag.Float64Var(&o.traceSample, "trace-sample", 0, "fraction of requests to trace (0 disables, 1 traces all)")
	flag.BoolVar(&o.pprofOn, "pprof", false, "mount /debug/pprof handlers")
	flag.Float64Var(&o.sloAvailability, "slo-availability", 0.999, "availability objective target (-1 disables)")
	flag.Float64Var(&o.sloLatTarget, "slo-latency-target", 0.99, "latency objective quantile target")
	flag.DurationVar(&o.sloLatThreshold, "slo-latency-threshold", 250*time.Millisecond, "latency objective per-request budget (-1ns disables)")
	flag.DurationVar(&o.sloTick, "slo-tick", 10*time.Second, "health tick interval (SLO window sampling)")
	flag.IntVar(&o.flightCapacity, "flight-capacity", 256, "flight recorder ring size (-1 disables)")
	flag.IntVar(&o.flightSample, "flight-sample", 64, "record one unremarkable request per this many (-1 disables sampling)")
	flag.Float64Var(&o.flightSlowFactor, "flight-slow-factor", 4, "dynamic slow threshold = tenant p99 x this factor")
	flag.BoolVar(&o.dumpBundle, "dump-bundle", false, "write one diagnostic bundle to stdout and exit")
	flag.Parse()

	os.Exit(run(o))
}

func run(o options) int {
	fail := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, "error: "+format+"\n", args...)
		return 2
	}
	// Fail fast on nonsense flags rather than surfacing them as runtime
	// misbehaviour deep in the service.
	if o.nodes <= 0 || o.edges < 0 {
		return fail("-nodes must be > 0 and -edges >= 0 (got %d, %d)", o.nodes, o.edges)
	}
	if o.tenantRPS <= 0 || o.tenantBurst <= 0 {
		return fail("-tenant-rps and -tenant-burst must be > 0 (got %g, %g)", o.tenantRPS, o.tenantBurst)
	}
	if o.defTimeout <= 0 || o.maxTimeout <= 0 || o.defTimeout > o.maxTimeout {
		return fail("need 0 < -default-timeout <= -max-timeout (got %v, %v)", o.defTimeout, o.maxTimeout)
	}
	if o.brThreshold <= 0 || o.brCooldown <= 0 {
		return fail("-breaker-threshold and -breaker-cooldown must be > 0 (got %d, %v)", o.brThreshold, o.brCooldown)
	}
	if o.drainTimeout <= 0 {
		return fail("-drain-timeout must be > 0 (got %v)", o.drainTimeout)
	}
	if o.traceSample < 0 || o.traceSample > 1 {
		return fail("-trace-sample must be in [0, 1] (got %g)", o.traceSample)
	}
	if o.sloAvailability >= 1 {
		return fail("-slo-availability must be below 1 (got %g)", o.sloAvailability)
	}
	if o.sloLatTarget < 0 || o.sloLatTarget >= 1 {
		return fail("-slo-latency-target must be in (0, 1) (got %g)", o.sloLatTarget)
	}
	if o.sloTick <= 0 {
		return fail("-slo-tick must be > 0 (got %v)", o.sloTick)
	}

	var (
		builder nemoeval.InstanceBuilder
		name    string
	)
	switch o.app {
	case "traffic":
		builder, name = service.TrafficBuilder(o.nodes, o.edges, o.seed)
	case "malt":
		builder, name = nemoeval.MALTDataset(), "malt"
	case "diagnosis":
		builder, name = nemoeval.DiagnosisDataset(diagnosis.DefaultConfig), "diagnosis"
	default:
		return fail("unknown app %q (have traffic, malt, diagnosis)", o.app)
	}

	svc, err := service.New(service.Config{
		Dataset:             builder,
		DatasetName:         name,
		TenantRPS:           o.tenantRPS,
		TenantBurst:         o.tenantBurst,
		TenantConcurrency:   o.tenantConc,
		DefaultTimeout:      o.defTimeout,
		MaxTimeout:          o.maxTimeout,
		BreakerThreshold:    o.brThreshold,
		BreakerCooldown:     o.brCooldown,
		TraceSample:         o.traceSample,
		SLOAvailability:     o.sloAvailability,
		SLOLatencyTarget:    o.sloLatTarget,
		SLOLatencyThreshold: o.sloLatThreshold,
		FlightCapacity:      o.flightCapacity,
		FlightSampleEvery:   o.flightSample,
		FlightSlowFactor:    o.flightSlowFactor,
	})
	if err != nil {
		return fail("%v", err)
	}

	if o.dumpBundle {
		svc.HealthTick() // give the SLO windows a baseline sample
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(svc.DebugBundle()); err != nil {
			return fail("dump-bundle: %v", err)
		}
		return 0
	}

	mux := http.NewServeMux()
	mux.Handle("/", service.NewHandler(svc))
	if o.pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}

	// The health ticker drives SLO window sampling and slow-threshold
	// refresh until shutdown.
	tickDone := make(chan struct{})
	go func() {
		t := time.NewTicker(o.sloTick)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				svc.HealthTick()
			case <-tickDone:
				return
			}
		}
	}()

	server := &http.Server{Addr: o.addr, Handler: mux}
	go func() {
		log.Printf("netqueryd: serving %s on %s", name, o.addr)
		if err := server.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()

	// Graceful drain: stop accepting, let in-flight queries finish, then
	// exit. A second signal aborts the drain.
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	<-sigs
	close(tickDone)
	log.Printf("netqueryd: draining (up to %s)...", o.drainTimeout)
	ctx, cancel := context.WithTimeout(context.Background(), o.drainTimeout)
	defer cancel()
	go func() {
		<-sigs
		cancel()
	}()
	if err := server.Shutdown(ctx); err != nil {
		log.Printf("netqueryd: http shutdown: %v", err)
	}
	if err := svc.Drain(ctx); err != nil {
		log.Printf("netqueryd: drain: %v", err)
	}
	log.Printf("netqueryd: done")
	return 0
}

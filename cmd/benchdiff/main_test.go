package main

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	cases := []struct {
		line   string
		name   string
		ns     float64
		bytes  float64
		allocs float64
		ok     bool
	}{
		{"BenchmarkGraphPageRank-1   \t     1\t    163072 ns/op\t   57344 B/op\t       6 allocs/op", "BenchmarkGraphPageRank", 163072, 57344, 6, true},
		{"BenchmarkTable2 \t 1 \t 1234567890 ns/op", "BenchmarkTable2", 1234567890, math.NaN(), math.NaN(), true},
		{"BenchmarkSandboxGoldenQuery-8   	    1	    171629.5 ns/op", "BenchmarkSandboxGoldenQuery", 171629.5, math.NaN(), math.NaN(), true},
		{"ok  \trepro\t12.3s", "", 0, 0, 0, false},
		{"--- BENCH: BenchmarkFoo", "", 0, 0, 0, false},
	}
	sameOrNaN := func(a, b float64) bool {
		return a == b || (math.IsNaN(a) && math.IsNaN(b))
	}
	for _, c := range cases {
		name, m, ok := parseBenchOutput(c.line)
		if ok != c.ok || name != c.name {
			t.Errorf("parseBenchOutput(%q) = (%q, %v), want (%q, %v)", c.line, name, ok, c.name, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if m.ns != c.ns || !sameOrNaN(m.bytes, c.bytes) || !sameOrNaN(m.allocs, c.allocs) {
			t.Errorf("parseBenchOutput(%q) metrics = %+v, want ns=%v bytes=%v allocs=%v",
				c.line, m, c.ns, c.bytes, c.allocs)
		}
	}
}

func TestDiffFlagsRegressions(t *testing.T) {
	nan := math.NaN()
	oldM := map[string]measure{
		"BenchmarkTable2":             {ns: 1000, bytes: 100, allocs: 10},
		"BenchmarkTable4":             {ns: 1000, bytes: 100, allocs: 10},
		"BenchmarkGraphPageRank":      {ns: 200, bytes: nan, allocs: nan},
		"BenchmarkGraphClone":         {ns: 100, bytes: 50, allocs: 5},
		"BenchmarkSandboxGoldenQuery": {ns: 500, bytes: 500, allocs: 50},
		"BenchmarkUnwatched":          {ns: 10, bytes: 10, allocs: 1},
	}
	newM := map[string]measure{
		"BenchmarkTable2":             {ns: 1050, bytes: 101, allocs: 10}, // +5% ns: fine
		"BenchmarkTable4":             {ns: 900, bytes: 95, allocs: 20},   // allocs +100%: regression
		"BenchmarkGraphPageRank":      {ns: 260, bytes: nan, allocs: nan}, // +30% ns: regression
		"BenchmarkGraphClone":         {ns: 90, bytes: 40, allocs: 5},     // faster and leaner
		"BenchmarkSandboxGoldenQuery": {ns: 500, bytes: 500, allocs: 50},
		"BenchmarkUnwatched":          {ns: 1000, bytes: 10, allocs: 1}, // not watched: informational
		"BenchmarkFederatedJoin":      {ns: 42},                         // new watched entries are informational
	}
	watch := splitWatch(defaultWatch + ",FederatedJoin")
	report, regressed := diff(oldM, newM, watch, 0.10, 0.25)
	if !regressed {
		t.Fatalf("expected regression:\n%s", report)
	}
	if !strings.Contains(report, "BenchmarkGraphPageRank") || !strings.Contains(report, "REGRESSION") {
		t.Errorf("report does not flag the PageRank ns regression:\n%s", report)
	}
	if !strings.Contains(report, "BenchmarkTable4") {
		t.Errorf("report does not show Table4:\n%s", report)
	}
	// Table4 got faster but doubled its allocations: still a regression.
	for _, line := range strings.Split(report, "\n") {
		if strings.Contains(line, "BenchmarkTable4") && !strings.Contains(line, "REGRESSION") {
			t.Errorf("alloc regression on Table4 not gated:\n%s", report)
		}
	}
	if !strings.Contains(report, "BenchmarkUnwatched") || !strings.Contains(report, "(info: not gated)") {
		t.Errorf("report does not show the unwatched regression as informational:\n%s", report)
	}
	if !strings.Contains(report, "new") {
		t.Errorf("report does not mark the new benchmark:\n%s", report)
	}
	// Within threshold on every watched benchmark -> clean diff.
	newM["BenchmarkGraphPageRank"] = measure{ns: 210, bytes: nan, allocs: nan}
	newM["BenchmarkTable4"] = measure{ns: 900, bytes: 95, allocs: 10}
	report, regressed = diff(oldM, newM, watch, 0.10, 0.25)
	if regressed {
		t.Errorf("unexpected regression:\n%s", report)
	}
	if !strings.Contains(report, "no regressions") {
		t.Errorf("clean diff not reported:\n%s", report)
	}
}

func TestDiffP99UsesOwnThreshold(t *testing.T) {
	// p99 is gated at its own (wider) threshold: a +15% tail move passes
	// under a 0.25 p99 gate even with ns/B/allocs gated at 0.10, but the
	// same move is a regression when the p99 gate is tightened to 0.10.
	oldM := map[string]measure{
		"BenchmarkServiceQuery": {ns: 1000, bytes: 100, allocs: 10, p99: 80000},
	}
	newM := map[string]measure{
		"BenchmarkServiceQuery": {ns: 1000, bytes: 100, allocs: 10, p99: 92000},
	}
	watch := splitWatch(defaultWatch)
	report, regressed := diff(oldM, newM, watch, 0.10, 0.25)
	if regressed {
		t.Errorf("+15%% p99 flagged under the 0.25 p99 gate:\n%s", report)
	}
	report, regressed = diff(oldM, newM, watch, 0.10, 0.10)
	if !regressed {
		t.Errorf("+15%% p99 not flagged under a 0.10 p99 gate:\n%s", report)
	}
	// A +30% tail move exceeds even the wide gate.
	newM["BenchmarkServiceQuery"] = measure{ns: 1000, bytes: 100, allocs: 10, p99: 104000}
	report, regressed = diff(oldM, newM, watch, 0.10, 0.25)
	if !regressed {
		t.Errorf("+30%% p99 not flagged under the 0.25 p99 gate:\n%s", report)
	}
}

func TestDiffFlagsZeroBaselineGrowth(t *testing.T) {
	oldM := map[string]measure{"BenchmarkNQLVM": {ns: 100, bytes: 0, allocs: 0}}
	newM := map[string]measure{"BenchmarkNQLVM": {ns: 100, bytes: 500, allocs: 20}}
	report, regressed := diff(oldM, newM, splitWatch(defaultWatch), 0.10, 0.25)
	if !regressed {
		t.Fatalf("zero-baseline allocation growth not flagged:\n%s", report)
	}
	// Staying at zero is clean.
	newM["BenchmarkNQLVM"] = measure{ns: 100, bytes: 0, allocs: 0}
	report, regressed = diff(oldM, newM, splitWatch(defaultWatch), 0.10, 0.25)
	if regressed {
		t.Fatalf("zero-to-zero flagged as regression:\n%s", report)
	}
}

func TestRecordKeepsPerMetricMin(t *testing.T) {
	out := map[string]measure{}
	record(out, "BenchmarkX", measure{ns: 200, bytes: 50, allocs: math.NaN()})
	record(out, "BenchmarkX", measure{ns: 150, bytes: 80, allocs: 7})
	record(out, "BenchmarkX", measure{ns: 180, bytes: math.NaN(), allocs: 9})
	got := out["BenchmarkX"]
	if got.ns != 150 || got.bytes != 50 || got.allocs != 7 {
		t.Fatalf("min-merge got %+v, want ns=150 bytes=50 allocs=7", got)
	}
}

// TestFinalizeMedianP99 proves p99 aggregates as the median of repeats,
// not the minimum: one lucky collision-free run (the 58k outlier) must
// not become the baseline a later identical run regresses against.
func TestFinalizeMedianP99(t *testing.T) {
	out := map[string]measure{}
	for _, p := range []float64{89000, 58000, 91000, 95000, 89000} {
		record(out, "BenchmarkServiceQuery", measure{ns: 500000, bytes: math.NaN(), allocs: math.NaN(), p99: p})
	}
	finalize(out)
	if got := out["BenchmarkServiceQuery"].p99; got != 89000 {
		t.Fatalf("median p99 = %v, want 89000 (min-of-N would give 58000)", got)
	}

	// Even sample count resolves to the lower-middle real sample.
	out = map[string]measure{}
	for _, p := range []float64{80000, 90000, 100000, 110000} {
		record(out, "BenchmarkX", measure{ns: 1, bytes: math.NaN(), allocs: math.NaN(), p99: p})
	}
	finalize(out)
	if got := out["BenchmarkX"].p99; got != 90000 {
		t.Fatalf("even-count median p99 = %v, want 90000", got)
	}

	// No p99 metric reported: finalize yields NaN, diff renders "-".
	out = map[string]measure{}
	record(out, "BenchmarkY", measure{ns: 1, bytes: math.NaN(), allocs: math.NaN(), p99: math.NaN()})
	finalize(out)
	if got := out["BenchmarkY"].p99; !math.IsNaN(got) {
		t.Fatalf("p99 with no samples = %v, want NaN", got)
	}
}

func TestDefaultWatchCoversVMAndTable4(t *testing.T) {
	for _, want := range []string{"Table2", "Table4", "NQLVM", "SandboxGoldenQuery", "StreamSweep"} {
		if !strings.Contains(defaultWatch, want) {
			t.Errorf("defaultWatch %q is missing %s", defaultWatch, want)
		}
	}
}

func TestParseBenchFileAndDiscover(t *testing.T) {
	dir := t.TempDir()
	// Mirrors a real `go test -json -bench` stream: the name and the
	// measurements of BenchmarkTable2 arrive as separate output chunks,
	// while BenchmarkGraphClone arrives as one line.
	lines := `{"Action":"run","Package":"repro","Test":"BenchmarkGraphClone"}
{"Action":"output","Package":"repro","Output":"BenchmarkGraphClone-1   \t     1\t    851234 ns/op\t  12345 B/op\t      35 allocs/op\n"}
not json at all
{"Action":"output","Package":"repro","Output":"BenchmarkTable2\n"}
{"Action":"output","Package":"repro","Output":"BenchmarkTable2                \t"}
{"Action":"output","Package":"repro","Output":"       1\t9128170674 ns/op\t         0.7778 gpt4-malt-nx-acc\t2091770288 B/op\t20282733 allocs/op\n"}
{"Action":"output","Package":"repro","Output":"ok  \trepro\t1.0s\n"}
`
	p1 := filepath.Join(dir, "BENCH_1.json")
	if err := os.WriteFile(p1, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := parseBenchFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkGraphClone"].ns != 851234 || got["BenchmarkGraphClone"].allocs != 35 {
		t.Errorf("parsed GraphClone = %+v", got["BenchmarkGraphClone"])
	}
	if got["BenchmarkTable2"].ns != 9128170674 || got["BenchmarkTable2"].bytes != 2091770288 || got["BenchmarkTable2"].allocs != 20282733 {
		t.Errorf("parsed Table2 = %+v", got["BenchmarkTable2"])
	}
	p2 := filepath.Join(dir, "BENCH_2.json")
	if err := os.WriteFile(p2, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	older, newer, err := discover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if older != p1 || newer != p2 {
		t.Errorf("discover = (%s, %s), want (%s, %s)", older, newer, p1, p2)
	}
	if _, _, err := discover(t.TempDir()); err == nil {
		t.Error("discover on empty dir should fail")
	}
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	cases := []struct {
		line string
		name string
		ns   float64
		ok   bool
	}{
		{"BenchmarkGraphPageRank-1   \t     1\t    163072 ns/op\t   57344 B/op\t       6 allocs/op", "BenchmarkGraphPageRank", 163072, true},
		{"BenchmarkTable2 \t 1 \t 1234567890 ns/op", "BenchmarkTable2", 1234567890, true},
		{"BenchmarkSandboxGoldenQuery-8   	    1	    171629.5 ns/op", "BenchmarkSandboxGoldenQuery", 171629.5, true},
		{"ok  \trepro\t12.3s", "", 0, false},
		{"--- BENCH: BenchmarkFoo", "", 0, false},
	}
	for _, c := range cases {
		name, ns, ok := parseBenchOutput(c.line)
		if ok != c.ok || name != c.name || ns != c.ns {
			t.Errorf("parseBenchOutput(%q) = (%q, %v, %v), want (%q, %v, %v)",
				c.line, name, ns, ok, c.name, c.ns, c.ok)
		}
	}
}

func TestDiffFlagsRegressions(t *testing.T) {
	oldNs := map[string]float64{
		"BenchmarkTable2":             1000,
		"BenchmarkGraphPageRank":      200,
		"BenchmarkGraphClone":         100,
		"BenchmarkSandboxGoldenQuery": 500,
		"BenchmarkUnwatched":          10,
	}
	newNs := map[string]float64{
		"BenchmarkTable2":             1050, // +5%: fine
		"BenchmarkGraphPageRank":      260,  // +30%: regression
		"BenchmarkGraphClone":         90,   // faster
		"BenchmarkSandboxGoldenQuery": 500,
		"BenchmarkUnwatched":          1000, // not watched: ignored
		"BenchmarkFederatedJoin":      42,   // new watched entries are informational
	}
	watch := splitWatch(defaultWatch + ",FederatedJoin")
	report, regressed := diff(oldNs, newNs, watch, 0.10)
	if !regressed {
		t.Fatalf("expected regression:\n%s", report)
	}
	if !strings.Contains(report, "BenchmarkGraphPageRank") || !strings.Contains(report, "REGRESSION") {
		t.Errorf("report does not flag the PageRank regression:\n%s", report)
	}
	if !strings.Contains(report, "BenchmarkUnwatched") || !strings.Contains(report, "(info: not gated)") {
		t.Errorf("report does not show the unwatched regression as informational:\n%s", report)
	}
	if !strings.Contains(report, "new") {
		t.Errorf("report does not mark the new benchmark:\n%s", report)
	}
	// Within threshold on every watched benchmark -> clean diff.
	newNs["BenchmarkGraphPageRank"] = 210
	report, regressed = diff(oldNs, newNs, watch, 0.10)
	if regressed {
		t.Errorf("unexpected regression:\n%s", report)
	}
	if !strings.Contains(report, "no regressions") {
		t.Errorf("clean diff not reported:\n%s", report)
	}
}

func TestParseBenchFileAndDiscover(t *testing.T) {
	dir := t.TempDir()
	// Mirrors a real `go test -json -bench` stream: the name and the
	// measurements of BenchmarkTable2 arrive as separate output chunks,
	// while BenchmarkGraphClone arrives as one line.
	lines := `{"Action":"run","Package":"repro","Test":"BenchmarkGraphClone"}
{"Action":"output","Package":"repro","Output":"BenchmarkGraphClone-1   \t     1\t    851234 ns/op\t  12345 B/op\t      35 allocs/op\n"}
not json at all
{"Action":"output","Package":"repro","Output":"BenchmarkTable2\n"}
{"Action":"output","Package":"repro","Output":"BenchmarkTable2                \t"}
{"Action":"output","Package":"repro","Output":"       1\t9128170674 ns/op\t         0.7778 gpt4-malt-nx-acc\n"}
{"Action":"output","Package":"repro","Output":"ok  \trepro\t1.0s\n"}
`
	p1 := filepath.Join(dir, "BENCH_1.json")
	if err := os.WriteFile(p1, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := parseBenchFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkGraphClone"] != 851234 || got["BenchmarkTable2"] != 9128170674 {
		t.Errorf("parsed %v", got)
	}
	p2 := filepath.Join(dir, "BENCH_2.json")
	if err := os.WriteFile(p2, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	older, newer, err := discover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if older != p1 || newer != p2 {
		t.Errorf("discover = (%s, %s), want (%s, %s)", older, newer, p1, p2)
	}
	if _, _, err := discover(t.TempDir()); err == nil {
		t.Error("discover on empty dir should fail")
	}
}

// Command benchdiff compares two `make bench` snapshots (BENCH_<n>.json,
// the test2json stream of one benchmark run) and flags regressions on the
// watched benchmarks, per the ROADMAP's perf-trajectory gate: >10% worse
// on any gated metric of Table2 / Table4 / GraphClone / GraphPageRank /
// SandboxGoldenQuery / NQLVM / StreamSweep / GatewayThroughput /
// ServiceQuery / FederatedJoin / FederatedGoldenQuery fails the diff.
// Time (ns/op) and the allocation bill (B/op, allocs/op) are gated at
// -threshold; tail latency (the p99-ns custom metric, when a benchmark
// reports one — open-loop load benchmarks pin ns/op to the arrival
// schedule, so their tail is the real signal) is gated at the wider
// -p99-threshold, because p99 is an order statistic rendered from
// log-bucketed histograms whose bucket step (~12% in the observed range)
// exceeds the base threshold: identical code wobbles one bucket run to
// run. Aggregation across -count repeats also differs per metric: ns/op,
// B/op and allocs/op take the minimum (noise only inflates them), while
// p99-ns takes the median — a lucky collision-free run deflates a tail
// quantile, so a min-of-N baseline is the luckiest tail ever observed and
// identical code then fails against it. A PR that gets faster by
// allocating wildly more, or leaner by getting slower, still fails.
//
// Usage:
//
//	benchdiff [-old BENCH_1.json] [-new BENCH_2.json]
//	          [-threshold 0.10] [-p99-threshold 0.25]
//	          [-watch Table2,GraphClone,...]
//
// Without -old/-new it auto-discovers the two highest-numbered
// BENCH_<n>.json files in the current directory and compares them. Exits 1
// when a watched benchmark regressed beyond the threshold.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// measure is one benchmark's recorded metrics. B/op and allocs/op are NaN
// when the run did not use -benchmem; p99 is NaN unless the benchmark
// reports a p99-ns custom metric.
type measure struct {
	ns     float64
	bytes  float64
	allocs float64
	p99    float64   // median across -count repeats, resolved by finalize
	p99s   []float64 // raw per-run p99-ns samples
}

// benchLine extracts a complete "BenchmarkName-P  N  1234 ns/op ..."
// result from one output line.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// nameLine matches the name chunk test2json emits when the testing package
// flushes the benchmark name before its result ("BenchmarkTable2  \t").
var nameLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?$`)

// resultLine matches the continuation chunk carrying the measurements
// ("       1\t9128170674 ns/op\t...").
var resultLine = regexp.MustCompile(`^\d+\s+([0-9.]+) ns/op`)

// memLine extracts the -benchmem metrics from a result line; p99Line the
// tail-latency custom metric (testing may render it in scientific
// notation).
var (
	bytesLine  = regexp.MustCompile(`([0-9.]+) B/op`)
	allocsLine = regexp.MustCompile(`([0-9.]+) allocs/op`)
	p99Line    = regexp.MustCompile(`([0-9.]+(?:[eE][+-]?[0-9]+)?) p99-ns`)
)

// defaultWatch is the ROADMAP's regression watchlist.
const defaultWatch = "Table2,Table4,GraphClone,GraphPageRank,SandboxGoldenQuery,NQLVM,StreamSweep,GatewayThroughput,ServiceQuery,ObsOverhead/disabled,FederatedJoin,FederatedGoldenQuery"

func main() {
	oldPath := flag.String("old", "", "baseline BENCH_<n>.json (default: second-newest in .)")
	newPath := flag.String("new", "", "candidate BENCH_<n>.json (default: newest in .)")
	threshold := flag.Float64("threshold", 0.10, "relative ns/op, B/op or allocs/op increase that counts as a regression")
	p99Threshold := flag.Float64("p99-threshold", 0.25, "relative p99-ns increase that counts as a regression; wider than -threshold because p99 is an order statistic read from log-bucketed histograms (~12% per bucket), so a one-bucket wobble on identical code already exceeds 10%")
	watch := flag.String("watch", defaultWatch, "comma-separated benchmark name substrings to gate on")
	flag.Parse()

	if *oldPath == "" || *newPath == "" {
		a, b, err := discover(".")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		if *oldPath == "" {
			*oldPath = a
		}
		if *newPath == "" {
			*newPath = b
		}
	}
	oldM, err := parseBenchFile(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newM, err := parseBenchFile(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	report, regressed := diff(oldM, newM, splitWatch(*watch), *threshold, *p99Threshold)
	fmt.Printf("benchdiff: %s -> %s (threshold %+.0f%%)\n", *oldPath, *newPath, *threshold*100)
	fmt.Print(report)
	if regressed {
		os.Exit(1)
	}
}

// discover returns the second-newest and newest BENCH_<n>.json by number.
func discover(dir string) (older, newer string, err error) {
	matches, _ := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	type numbered struct {
		n    int
		path string
	}
	var files []numbered
	for _, m := range matches {
		base := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(m), "BENCH_"), ".json")
		if n, err := strconv.Atoi(base); err == nil {
			files = append(files, numbered{n, m})
		}
	}
	if len(files) < 2 {
		return "", "", fmt.Errorf("need two BENCH_<n>.json files in %s, found %d (run `make bench` per PR)", dir, len(files))
	}
	sort.Slice(files, func(i, j int) bool { return files[i].n < files[j].n })
	return files[len(files)-2].path, files[len(files)-1].path, nil
}

// parseBenchFile reads a test2json stream and returns benchmark -> metrics.
func parseBenchFile(path string) (map[string]measure, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]measure{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	// test2json usually splits a benchmark result into a name chunk and a
	// measurement chunk; pending carries the name across that split.
	pending := ""
	for sc.Scan() {
		var ev struct {
			Action string
			Output string
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			continue // tolerate non-JSON noise (tee'd warnings)
		}
		if ev.Action != "output" {
			continue
		}
		line := strings.TrimSpace(ev.Output)
		if name, m, ok := parseBenchOutput(line); ok {
			record(out, name, m)
			pending = ""
			continue
		}
		if m := nameLine.FindStringSubmatch(line); m != nil {
			pending = m[1]
			continue
		}
		if m := resultLine.FindStringSubmatch(line); m != nil && pending != "" {
			if ns, err := strconv.ParseFloat(m[1], 64); err == nil {
				record(out, pending, measure{ns: ns, bytes: memMetric(bytesLine, line),
					allocs: memMetric(allocsLine, line), p99: memMetric(p99Line, line)})
			}
			pending = ""
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results found", path)
	}
	finalize(out)
	return out, nil
}

// parseBenchOutput extracts one benchmark result from a test output line.
func parseBenchOutput(line string) (name string, m measure, ok bool) {
	line = strings.TrimSpace(line)
	match := benchLine.FindStringSubmatch(line)
	if match == nil {
		return "", measure{}, false
	}
	ns, err := strconv.ParseFloat(match[2], 64)
	if err != nil {
		return "", measure{}, false
	}
	return match[1], measure{ns: ns, bytes: memMetric(bytesLine, line),
		allocs: memMetric(allocsLine, line), p99: memMetric(p99Line, line)}, true
}

// record merges one observation into the snapshot. ns/op, B/op and
// allocs/op keep the per-metric minimum across -count repeats: for those,
// noise only inflates, so the fastest observed run is the estimate least
// distorted by transient co-tenant load on shared hardware, and neither
// side of the diff can be faked (or masked) by a noisy window. p99-ns is
// different — it is an order statistic of an open-loop load run, and a
// lucky run (no scheduling collisions) *deflates* it, so min-of-N
// enshrines the single luckiest tail as the baseline and identical code
// then "regresses" against it. p99 samples are therefore accumulated here
// and resolved to their median by finalize.
func record(out map[string]measure, name string, m measure) {
	prev, ok := out[name]
	if !ok {
		if !math.IsNaN(m.p99) {
			m.p99s = []float64{m.p99}
		}
		out[name] = m
		return
	}
	next := measure{
		ns:     math.Min(prev.ns, m.ns),
		bytes:  minOrNaN(prev.bytes, m.bytes),
		allocs: minOrNaN(prev.allocs, m.allocs),
		p99s:   prev.p99s,
	}
	if !math.IsNaN(m.p99) {
		next.p99s = append(next.p99s, m.p99)
	}
	out[name] = next
}

// finalize resolves each benchmark's accumulated p99 samples to their
// median (lower middle for even counts — a real sample, not an invented
// midpoint). NaN when the benchmark reported no p99-ns metric.
func finalize(out map[string]measure) {
	for name, m := range out {
		if len(m.p99s) == 0 {
			m.p99 = math.NaN()
		} else {
			s := append([]float64(nil), m.p99s...)
			sort.Float64s(s)
			m.p99 = s[(len(s)-1)/2]
		}
		out[name] = m
	}
}

func minOrNaN(a, b float64) float64 {
	if math.IsNaN(a) {
		return b
	}
	if math.IsNaN(b) {
		return a
	}
	return math.Min(a, b)
}

// memMetric pulls one -benchmem figure out of a result line; NaN if absent.
func memMetric(re *regexp.Regexp, line string) float64 {
	m := re.FindStringSubmatch(line)
	if m == nil {
		return math.NaN()
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		return math.NaN()
	}
	return v
}

func splitWatch(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// metricDelta returns the relative change, or NaN when either side is
// missing (pre-benchmem baselines). A zero baseline that grows is +Inf —
// a zero-alloc benchmark starting to allocate is the regression the gate
// exists for, not a gap in the data.
func metricDelta(before, after float64) float64 {
	if math.IsNaN(before) || math.IsNaN(after) {
		return math.NaN()
	}
	if before == 0 {
		if after == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (after - before) / before
}

func fmtDelta(d float64) string {
	switch {
	case math.IsNaN(d):
		return "-"
	case math.IsInf(d, 1):
		return "+inf"
	}
	return fmt.Sprintf("%+.1f%%", d*100)
}

// diff renders the comparison of every watched benchmark and reports
// whether any regressed beyond the threshold on any gated metric (ns/op,
// B/op, allocs/op at threshold; p99-ns at the wider p99Threshold).
// Unwatched benchmarks are listed only when their ns/op regressed, as
// informational lines.
func diff(oldM, newM map[string]measure, watch []string, threshold, p99Threshold float64) (string, bool) {
	names := make([]string, 0, len(newM))
	for name := range newM {
		names = append(names, name)
	}
	sort.Strings(names)
	watched := func(name string) bool {
		for _, w := range watch {
			if strings.Contains(name, w) {
				return true
			}
		}
		return false
	}
	var sb strings.Builder
	regressed := false
	sb.WriteString(fmt.Sprintf("%-34s %14s %14s %8s %8s %8s %8s\n",
		"benchmark", "old ns/op", "new ns/op", "ns", "B/op", "allocs", "p99"))
	for _, name := range names {
		after := newM[name]
		before, inOld := oldM[name]
		gate := watched(name)
		nsDelta := metricDelta(before.ns, after.ns)
		if !gate {
			// Unwatched benchmarks appear only when their time regressed,
			// as informational lines that never fail the diff.
			if !inOld || math.IsNaN(nsDelta) || nsDelta <= threshold {
				continue
			}
		}
		if !inOld {
			sb.WriteString(fmt.Sprintf("%-34s %14s %14.0f %8s %8s %8s %8s\n", name, "-", after.ns, "new", "", "", ""))
			continue
		}
		bDelta := metricDelta(before.bytes, after.bytes)
		aDelta := metricDelta(before.allocs, after.allocs)
		pDelta := metricDelta(before.p99, after.p99)
		flag := ""
		exceeded := func(d, limit float64) bool { return !math.IsNaN(d) && d > limit }
		if exceeded(nsDelta, threshold) || exceeded(bDelta, threshold) ||
			exceeded(aDelta, threshold) || exceeded(pDelta, p99Threshold) {
			if gate {
				flag = "  REGRESSION"
				regressed = true
			} else {
				flag = "  (info: not gated)"
			}
		}
		sb.WriteString(fmt.Sprintf("%-34s %14.0f %14.0f %8s %8s %8s %8s%s\n",
			name, before.ns, after.ns, fmtDelta(nsDelta), fmtDelta(bDelta), fmtDelta(aDelta), fmtDelta(pDelta), flag))
	}
	if !regressed {
		sb.WriteString("no regressions on watched benchmarks\n")
	}
	return sb.String(), regressed
}

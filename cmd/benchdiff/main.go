// Command benchdiff compares two `make bench` snapshots (BENCH_<n>.json,
// the test2json stream of one -benchtime=1x benchmark run) and flags
// regressions on the watched benchmarks, per the ROADMAP's perf-trajectory
// gate: >10% slower on Table2 / Clone / PageRank / SandboxGoldenQuery fails
// the diff.
//
// Usage:
//
//	benchdiff [-old BENCH_1.json] [-new BENCH_2.json]
//	          [-threshold 0.10] [-watch Table2,GraphClone,...]
//
// Without -old/-new it auto-discovers the two highest-numbered
// BENCH_<n>.json files in the current directory and compares them. Exits 1
// when a watched benchmark regressed beyond the threshold.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchLine extracts a complete "BenchmarkName-P  N  1234 ns/op ..."
// result from one output line.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// nameLine matches the name chunk test2json emits when the testing package
// flushes the benchmark name before its result ("BenchmarkTable2  \t").
var nameLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?$`)

// resultLine matches the continuation chunk carrying the measurements
// ("       1\t9128170674 ns/op\t...").
var resultLine = regexp.MustCompile(`^\d+\s+([0-9.]+) ns/op`)

// defaultWatch is the ROADMAP's regression watchlist.
const defaultWatch = "Table2,GraphClone,GraphPageRank,SandboxGoldenQuery"

func main() {
	oldPath := flag.String("old", "", "baseline BENCH_<n>.json (default: second-newest in .)")
	newPath := flag.String("new", "", "candidate BENCH_<n>.json (default: newest in .)")
	threshold := flag.Float64("threshold", 0.10, "relative ns/op increase that counts as a regression")
	watch := flag.String("watch", defaultWatch, "comma-separated benchmark name substrings to gate on")
	flag.Parse()

	if *oldPath == "" || *newPath == "" {
		a, b, err := discover(".")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		if *oldPath == "" {
			*oldPath = a
		}
		if *newPath == "" {
			*newPath = b
		}
	}
	oldNs, err := parseBenchFile(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newNs, err := parseBenchFile(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	report, regressed := diff(oldNs, newNs, splitWatch(*watch), *threshold)
	fmt.Printf("benchdiff: %s -> %s (threshold %+.0f%%)\n", *oldPath, *newPath, *threshold*100)
	fmt.Print(report)
	if regressed {
		os.Exit(1)
	}
}

// discover returns the second-newest and newest BENCH_<n>.json by number.
func discover(dir string) (older, newer string, err error) {
	matches, _ := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	type numbered struct {
		n    int
		path string
	}
	var files []numbered
	for _, m := range matches {
		base := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(m), "BENCH_"), ".json")
		if n, err := strconv.Atoi(base); err == nil {
			files = append(files, numbered{n, m})
		}
	}
	if len(files) < 2 {
		return "", "", fmt.Errorf("need two BENCH_<n>.json files in %s, found %d (run `make bench` per PR)", dir, len(files))
	}
	sort.Slice(files, func(i, j int) bool { return files[i].n < files[j].n })
	return files[len(files)-2].path, files[len(files)-1].path, nil
}

// parseBenchFile reads a test2json stream and returns benchmark -> ns/op.
func parseBenchFile(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]float64{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	// test2json usually splits a benchmark result into a name chunk and a
	// measurement chunk; pending carries the name across that split.
	pending := ""
	for sc.Scan() {
		var ev struct {
			Action string
			Output string
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			continue // tolerate non-JSON noise (tee'd warnings)
		}
		if ev.Action != "output" {
			continue
		}
		line := strings.TrimSpace(ev.Output)
		if name, ns, ok := parseBenchOutput(line); ok {
			out[name] = ns
			pending = ""
			continue
		}
		if m := nameLine.FindStringSubmatch(line); m != nil {
			pending = m[1]
			continue
		}
		if m := resultLine.FindStringSubmatch(line); m != nil && pending != "" {
			if ns, err := strconv.ParseFloat(m[1], 64); err == nil {
				out[pending] = ns
			}
			pending = ""
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results found", path)
	}
	return out, nil
}

// parseBenchOutput extracts one benchmark result from a test output line.
func parseBenchOutput(line string) (name string, nsPerOp float64, ok bool) {
	m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
	if m == nil {
		return "", 0, false
	}
	ns, err := strconv.ParseFloat(m[2], 64)
	if err != nil {
		return "", 0, false
	}
	return m[1], ns, true
}

func splitWatch(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// diff renders the comparison of every watched benchmark and reports
// whether any regressed beyond the threshold. Unwatched benchmarks are
// listed only when they regressed, as informational lines.
func diff(oldNs, newNs map[string]float64, watch []string, threshold float64) (string, bool) {
	names := make([]string, 0, len(newNs))
	for name := range newNs {
		names = append(names, name)
	}
	sort.Strings(names)
	watched := func(name string) bool {
		for _, w := range watch {
			if strings.Contains(name, w) {
				return true
			}
		}
		return false
	}
	var sb strings.Builder
	regressed := false
	sb.WriteString(fmt.Sprintf("%-34s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "delta"))
	for _, name := range names {
		after := newNs[name]
		before, inOld := oldNs[name]
		gate := watched(name)
		if !gate {
			// Unwatched benchmarks appear only when they regressed, as
			// informational lines that never fail the diff.
			if !inOld || (after-before)/before <= threshold {
				continue
			}
		}
		if !inOld {
			sb.WriteString(fmt.Sprintf("%-34s %14s %14.0f %8s\n", name, "-", after, "new"))
			continue
		}
		delta := (after - before) / before
		flag := ""
		if delta > threshold {
			if gate {
				flag = "  REGRESSION"
				regressed = true
			} else {
				flag = "  (info: not gated)"
			}
		}
		sb.WriteString(fmt.Sprintf("%-34s %14.0f %14.0f %+7.1f%%%s\n", name, before, after, delta*100, flag))
	}
	if !regressed {
		sb.WriteString("no regressions on watched benchmarks\n")
	}
	return sb.String(), regressed
}

// Command netquery is an interactive natural-language network management
// shell: the prototype UX of the paper's Figure 1. Queries are turned into
// code by the (simulated) LLM, executed in the sandbox against a clone of
// the network, and shown for inspection; mutations apply only on approval.
//
// Usage:
//
//	netquery [-app traffic|malt|diagnosis] [-model gpt-4]
//	         [-backend networkx|pandas|sql|federated]
//	         [-nodes 80] [-edges 80] [-yes] [query ...]
//
// With query arguments it runs them in order and exits; without, it reads
// queries from stdin (one per line; "approve", "discard", "show", "explain",
// "dot", "quit").
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/diagnosis"
	"repro/internal/explain"
	"repro/internal/graph"
	"repro/internal/llm"
	"repro/internal/malt"
	"repro/internal/nql"
	"repro/internal/prompt"
	"repro/internal/traffic"
)

func main() {
	app := flag.String("app", "traffic", "application: traffic, malt or diagnosis")
	model := flag.String("model", "gpt-4", "LLM: gpt-4, gpt-3, text-davinci-003, bard")
	backend := flag.String("backend", "networkx", "code generation backend: networkx, pandas, sql, federated")
	nodes := flag.Int("nodes", 80, "traffic graph nodes")
	edges := flag.Int("edges", 80, "traffic graph edges")
	seed := flag.Int64("seed", 42, "workload seed")
	autoApprove := flag.Bool("yes", false, "auto-approve state changes")
	flag.Parse()

	// Validate the backend up front: an unknown backend would otherwise
	// only surface deep inside the session as generated code that cannot
	// see any bindings.
	known := false
	for _, b := range prompt.AllBackends {
		if *backend == b {
			known = true
		}
	}
	if !known {
		fmt.Fprintf(os.Stderr, "unknown backend %q (have %s)\n",
			*backend, strings.Join(prompt.AllBackends, ", "))
		os.Exit(2)
	}

	m, err := llm.NewSim(*model)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	var session *core.Session
	switch *app {
	case "traffic":
		g := traffic.Generate(traffic.Config{Nodes: *nodes, Edges: *edges, Seed: *seed})
		session = core.NewTrafficSession(m, g, core.WithBackend(*backend))
	case "malt":
		session = core.NewMALTSession(m, malt.Generate(malt.Config{}), core.WithBackend(*backend))
	case "diagnosis":
		w := diagnosis.Generate(diagnosis.Config{
			Nodes: *nodes, Edges: *edges, Seed: *seed,
			FailedLinks: 4, Probes: 40,
		})
		session = core.NewDiagnosisSession(m, w, core.WithBackend(*backend))
	default:
		fmt.Fprintln(os.Stderr, "unknown app:", *app)
		os.Exit(2)
	}
	fmt.Printf("netquery: %s app, %s model, %s backend — %s\n",
		*app, *model, *backend, session.Graph().String())

	var lastCode string
	run := func(query string) {
		ix, err := session.Ask(query)
		if err != nil {
			fmt.Println("  generation failed:", err)
			return
		}
		lastCode = ix.Code
		fmt.Println("--- generated code ---")
		fmt.Println(indent(ix.Code))
		fmt.Println("----------------------")
		if ix.Err != nil {
			fmt.Println("  execution failed:", ix.Err)
			return
		}
		if ix.Stdout != "" {
			fmt.Print(ix.Stdout)
		}
		fmt.Printf("  result: %s\n  cost: $%.4f\n", nql.Repr(ix.Result), ix.CostUSD)
		if *autoApprove {
			if err := session.Approve(); err == nil {
				fmt.Println("  (state change auto-approved)")
			}
		} else {
			fmt.Println("  (type 'approve' to commit state changes)")
		}
	}

	if flag.NArg() > 0 {
		for _, q := range flag.Args() {
			fmt.Println("> " + q)
			run(q)
		}
		return
	}

	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch line {
		case "":
		case "quit", "exit":
			return
		case "approve":
			if err := session.Approve(); err != nil {
				fmt.Println(" ", err)
			} else {
				fmt.Println("  approved:", session.Graph().String())
			}
		case "discard":
			session.Discard()
			fmt.Println("  discarded")
		case "show":
			fmt.Println(" ", session.Graph().String())
		case "explain":
			// Plain-English narration of the last generated program (§5
			// code-comprehension aid).
			if lastCode == "" {
				fmt.Println("  nothing to explain yet")
				break
			}
			if text, err := explain.Program(lastCode); err != nil {
				fmt.Println("  cannot explain:", err)
			} else {
				fmt.Print(text)
			}
		case "dot":
			// Render the committed graph as Graphviz DOT (Figure 1's
			// colored-graph view: node colors follow the "color" attribute).
			fmt.Print(session.Graph().DOT(graph.DOTOptions{
				ColorAttr: "color", LabelAttr: "ip",
			}))
		default:
			run(line)
		}
		fmt.Print("> ")
	}
}

func indent(s string) string {
	lines := strings.Split(s, "\n")
	for i, l := range lines {
		lines[i] = "  " + l
	}
	return strings.Join(lines, "\n")
}

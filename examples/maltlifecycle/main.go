// Network lifecycle management over a MALT topology: operational queries,
// WAN capacity planning, and a topology-design mutation (switch removal
// with port rebalancing) — the paper's second application.
//
//	go run ./examples/maltlifecycle
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/llm"
	"repro/internal/malt"
	"repro/internal/nql"
)

func main() {
	top := malt.Generate(malt.Config{}) // 5493 entities, 6424 relationships
	model, err := llm.NewSim("gpt-4")
	if err != nil {
		log.Fatal(err)
	}
	session := core.NewMALTSession(model, top)
	fmt.Println("topology:", session.Graph().String())

	// Operational management.
	for _, q := range []string{
		"List all ports that are contained by packet switch ps.ju1.a1.m1.s2c1, sorted by id.",
		"How many chassis does datacenter ju2 contain?",
		"For each datacenter, count the ports whose admin_state is down; return a map from datacenter id to count, datacenters in ascending order.",
	} {
		ix, err := session.Ask(q)
		if err != nil || ix.Err != nil {
			log.Fatalf("query %q failed: %v %v", q, err, ix.Err)
		}
		fmt.Printf("Q: %s\nA: %s\n\n", q, trim(nql.Repr(ix.Result), 120))
	}

	// WAN capacity planning.
	q := "Plan a capacity doubling between datacenters ju1 and ju2: compute the current total chassis capacity of each, and return a map from datacenter name (ju1, ju2) to the minimum number of additional chassis of capacity 300 needed to double its total capacity."
	ix, err := session.Ask(q)
	if err != nil || ix.Err != nil {
		log.Fatalf("capacity query failed: %v %v", err, ix.Err)
	}
	fmt.Printf("capacity plan: %s\n\n", nql.Repr(ix.Result))

	// Topology design: remove a switch and rebalance its ports. This is a
	// hard query — the model's first program trips an argument error, so we
	// use the self-debugging loop: the session feeds the error back and the
	// corrected program succeeds. Inspect the plan before committing.
	q = "Remove packet switch ps.ju1.a4.m1.s1c1 from chassis ch.ju1.a4 and rebalance: reassign its ports (sorted by id) in round-robin order to the remaining switches of the same chassis (sorted by id), adding RK_CONTAINS edges and updating each switch's ports attribute to its new port count. Remove the switch entity afterwards."
	ix, err = session.SelfDebugAsk(q)
	if err != nil || ix.Err != nil {
		log.Fatalf("rebalance failed: %v %v", err, ix.Err)
	}
	fmt.Println("rebalance program generated (", len(ix.Code), "bytes ); approving...")
	if err := session.Approve(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("topology after rebalance:", session.Graph().String())
	if session.Graph().HasNode("ps.ju1.a4.m1.s1c1") {
		log.Fatal("switch still present!")
	}
	fmt.Println("switch ps.ju1.a4.m1.s1c1 removed; ports redistributed.")
}

func trim(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

// Modelserve: a tour of the model-serving gateway (internal/modelserve)
// using the chaos provider — the simulate → record → replay pipeline under
// deliberately hostile serving conditions. The demo fronts the calibrated
// sims with a fault injector that fails every request once, routes a
// worker-pool burst through the batching, rate-limited gateway while
// recording every generation, then replays the recording byte-identically
// with zero provider calls (and shows that the replayed run no longer
// needs retries: faults were absorbed at record time).
//
//	go run ./examples/modelserve
package main

import (
	"fmt"
	"log"
	"os"
	"sync"

	"repro/internal/llm"
	"repro/internal/modelserve"
	"repro/internal/prompt"
	"repro/internal/queries"
	"repro/internal/traffic"
)

func main() {
	dir, err := os.MkdirTemp("", "modelserve-demo-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Prompts for a few real benchmark queries, as the evaluator builds
	// them.
	g := traffic.Generate(traffic.Config{Nodes: 80, Edges: 80, Seed: 42})
	wrapper := traffic.NewWrapper(g)
	ids := []string{"ta-e1", "ta-e2", "ta-m1", "ta-h6"}
	var prompts []string
	for _, id := range ids {
		q, ok := queries.ByID(id)
		if !ok {
			log.Fatalf("unknown query %s", id)
		}
		prompts = append(prompts, prompt.BuildCodePrompt(wrapper, prompt.BackendNetworkX, q.Text))
	}

	// Phase 1: record through chaos. Every distinct request fails once
	// with a retryable fault before the sim answers, so the gateway's
	// retry loop has to absorb one transient failure per generation.
	chaos := &modelserve.Chaos{Inner: modelserve.NewSimProvider(), TransientFailures: 1}
	recorder, err := modelserve.NewRecorder(chaos, dir)
	if err != nil {
		log.Fatal(err)
	}
	recGW, err := modelserve.New(modelserve.Config{
		Provider:  recorder,
		BatchSize: 4,
		RPS:       200,
		Seed:      42,
	})
	if err != nil {
		log.Fatal(err)
	}
	recorded := burst(recGW, prompts)
	fmt.Println("recording run (chaos provider, 1 injected fault per request):")
	fmt.Printf("  %s\n", recGW.Stats())

	// Phase 2: replay. The cache answers everything; the chaos provider —
	// and the sims behind it — are never consulted.
	replay, err := modelserve.NewReplay(dir)
	if err != nil {
		log.Fatal(err)
	}
	repGW, err := modelserve.New(modelserve.Config{Provider: replay, BatchSize: 4})
	if err != nil {
		log.Fatal(err)
	}
	replayed := burst(repGW, prompts)
	fmt.Println("replay run (cache only):")
	fmt.Printf("  %s\n", repGW.Stats())

	for model, texts := range recorded {
		for i, text := range texts {
			if replayed[model][i] != text {
				log.Fatalf("replay diverged for %s request %d", model, i)
			}
		}
	}
	fmt.Printf("replay is byte-identical across %d models x %d prompts\n", len(recorded), len(prompts))

	// The generations are real NQL programs; show one.
	fmt.Printf("\ngpt-4 on %q:\n%s\n", ids[0], firstLines(recorded["gpt-4"][0], 3))
}

// burst fans every (model, prompt) pair over a goroutine per model —
// the shape of the evaluation worker pool — and collects response texts.
func burst(gw *modelserve.Gateway, prompts []string) map[string][]string {
	out := make(map[string][]string, len(llm.ModelNames))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, name := range llm.ModelNames {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			model := llm.NewProviderModel(gw, name)
			texts := make([]string, len(prompts))
			for i, p := range prompts {
				resp, err := model.Generate(llm.Request{Prompt: p, Attempt: 1})
				if err != nil {
					log.Fatalf("%s: %v", name, err)
				}
				texts[i] = resp.Text
			}
			mu.Lock()
			out[name] = texts
			mu.Unlock()
		}(name)
	}
	wg.Wait()
	return out
}

func firstLines(s string, n int) string {
	lines := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines++
			if lines == n {
				return s[:i] + "\n..."
			}
		}
	}
	return s
}

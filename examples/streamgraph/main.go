// Streamgraph: build a communication graph inside the sandbox from the
// seeded edge stream, using the incremental graph-update binding
// (edge_stream.next + graph.add_edge_batch) — the sandbox-side face of the
// streaming/sharded dataset pipeline. The run stops mid-stream, serializes
// the cursor, and resumes in a second sandboxed program to show that a
// stopped sweep continues byte-identically.
//
//	go run ./examples/streamgraph
package main

import (
	"fmt"
	"log"

	"repro/internal/graph"
	"repro/internal/nql"
	"repro/internal/nqlbind"
	"repro/internal/sandbox"
	"repro/internal/traffic"
)

func main() {
	// A config too large to want per-worker copies of: the stream hands
	// out the edge set in batches instead of materializing it up front.
	cfg := traffic.Config{Nodes: 2000, Edges: 20000, Seed: 42}
	st, err := traffic.NewStream(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1: a sandboxed program applies half the stream in batches,
	// then returns the serializable cursor.
	g := graph.NewDirected()
	globals := nqlbind.Globals(g, map[string]nql.Value{"stream": nqlbind.NewStreamObject(st)})
	policy := sandbox.DefaultPolicy
	policy.MaxSteps = 10_000_000
	res := sandbox.Run(`
let applied = 0
while applied < 10000 {
  applied = applied + graph.add_edge_batch(stream.next(1000))
}
return stream.cursor()`, globals, policy)
	if !res.OK() {
		log.Fatal(res.Err)
	}
	cursorStr := res.Value.(string)
	fmt.Printf("applied %d edges, stopped at cursor %s\n", g.NumEdges(), cursorStr)

	// Phase 2: resume from the serialized cursor — e.g. in a later process
	// — and finish the build.
	cur, err := traffic.ParseCursor(cursorStr)
	if err != nil {
		log.Fatal(err)
	}
	resumed, err := traffic.ResumeStream(cur)
	if err != nil {
		log.Fatal(err)
	}
	globals = nqlbind.Globals(g, map[string]nql.Value{"stream": nqlbind.NewStreamObject(resumed)})
	res = sandbox.Run(`
while stream.remaining() > 0 { graph.add_edge_batch(stream.next(1000)) }
return [graph.number_of_nodes(), graph.number_of_edges()]`, globals, policy)
	if !res.OK() {
		log.Fatal(res.Err)
	}
	fmt.Printf("resumed build: nodes/edges = %s\n", nql.Repr(res.Value))

	// The incrementally built graph matches a straight-through Go build.
	want := graph.NewDirected()
	ref, _ := traffic.NewStream(cfg)
	for {
		batch := ref.Next(4096)
		if len(batch) == 0 {
			break
		}
		for _, e := range batch {
			want.AddEdge(e.U, e.V, e.Attrs())
		}
	}
	fmt.Printf("matches straight-through build: %v\n", graph.Equal(g, want))
}

// Traffic analysis walkthrough: the paper's motivating workload. A network
// operator asks diagnostic questions over a communication graph, inspects
// the generated programs, and approves a graph manipulation (the Figure 1
// "assign a unique color per /16 prefix" query).
//
//	go run ./examples/trafficanalysis
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/llm"
	"repro/internal/nql"
	"repro/internal/traffic"
)

func main() {
	g := traffic.Generate(traffic.Config{Nodes: 80, Edges: 80, Seed: 42})
	model, err := llm.NewSim("gpt-4")
	if err != nil {
		log.Fatal(err)
	}
	session := core.NewTrafficSession(model, g)

	// Diagnostic questions (read-only).
	for _, q := range []string{
		"How many nodes are in the communication graph?",
		"How many hops are required to transmit data from h000 to h005 following edge directions? Return -1 if no path exists.",
		"Find the top 3 nodes by total traffic volume in bytes (incoming plus outgoing), returning [node, bytes] pairs in descending order; break ties by node id.",
	} {
		ix, err := session.Ask(q)
		if err != nil || ix.Err != nil {
			log.Fatalf("query %q failed: %v %v", q, err, ix.Err)
		}
		fmt.Printf("Q: %s\nA: %s  (cost $%.4f)\n\n", q, nql.Repr(ix.Result), ix.CostUSD)
	}

	// The Figure 1 manipulation: color nodes by /16 prefix. The mutation
	// runs against a clone; the operator reviews the code, then approves.
	q := "Assign a unique color for each /16 IP address prefix."
	ix, err := session.Ask(q)
	if err != nil || ix.Err != nil {
		log.Fatalf("color query failed: %v %v", err, ix.Err)
	}
	fmt.Println("Q:", q)
	fmt.Println("generated program:")
	fmt.Println(ix.Code)

	before := colorCount(session)
	fmt.Printf("\ncolors on live graph before approval: %d\n", before)
	if err := session.Approve(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("colors on live graph after approval:  %d\n", colorCount(session))

	// The updated communication graph is now the session's live state.
	fmt.Println("\nfinal state:", session.Graph().String())
}

func colorCount(s *core.Session) int {
	colors := map[string]bool{}
	for _, n := range s.Graph().Nodes() {
		if c, ok := s.Graph().NodeAttrs(n)["color"].(string); ok {
			colors[c] = true
		}
	}
	return len(colors)
}

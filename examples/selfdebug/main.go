// Self-debug walkthrough: a weaker model (Bard) fails a lifecycle query,
// the error message is fed back, and the repaired program succeeds — the
// paper's §4.4 case study, as an operator would experience it.
//
//	go run ./examples/selfdebug
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/llm"
	"repro/internal/malt"
	"repro/internal/nql"
)

func main() {
	model, err := llm.NewSim("bard")
	if err != nil {
		log.Fatal(err)
	}
	top := malt.Generate(malt.Config{})

	query := "For each datacenter, count the ports whose admin_state is down; return a map from datacenter id to count, datacenters in ascending order."

	// First, watch it fail without self-debug.
	plain := core.NewMALTSession(model, top)
	ix, err := plain.Ask(query)
	if err != nil {
		log.Fatal(err)
	}
	if ix.Err == nil {
		log.Fatal("expected the first attempt to fail for this model")
	}
	fmt.Println("first attempt failed as expected:")
	fmt.Println(" ", ix.Err)
	fmt.Println()

	// Now with one self-debug round: the session feeds the error back to
	// the model and retries.
	debugged := core.NewMALTSession(model, top)
	ix, err = debugged.SelfDebugAsk(query)
	if err != nil {
		log.Fatal(err)
	}
	if ix.Err != nil {
		log.Fatal("self-debug did not recover: ", ix.Err)
	}
	fmt.Println("self-debug recovered; corrected program output:")
	fmt.Printf("  %s\n", nql.Repr(ix.Result))
	fmt.Printf("\ninteraction history: %d rounds (initial attempt + repair)\n", len(debugged.History))
}

// Fault diagnosis walkthrough: the paper's §5 "expanding benchmarks"
// direction, implemented. A network with injected link failures is probed
// end-to-end; the operator localizes the faults in natural language, and
// the generated code reasons over the probe evidence.
//
//	go run ./examples/faultdiagnosis
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/diagnosis"
	"repro/internal/llm"
	"repro/internal/nql"
)

func main() {
	w := diagnosis.Generate(diagnosis.DefaultConfig)
	model, err := llm.NewSim("gpt-4")
	if err != nil {
		log.Fatal(err)
	}
	session := core.NewDiagnosisSession(model, w)

	fmt.Printf("scenario: %s, %d probes, %d links secretly down\n\n",
		session.Graph().String(), len(w.Probes), diagnosis.DefaultConfig.FailedLinks)

	for _, q := range []string{
		"List the ids of the probes that failed, sorted.",
		"Which directed links appear in at least one failed probe but in no successful probe? Return them as [src, dst] pairs, sorted.",
		"Rank candidate faulty links by suspicion score, defined as the number of failed probes containing the link divided by one plus the number of successful probes containing it. Return the top 5 as [src, dst] pairs in descending score order, ties by source then destination id.",
	} {
		ix, err := session.Ask(q)
		if err != nil || ix.Err != nil {
			log.Fatalf("query failed: %v %v", err, ix.Err)
		}
		fmt.Printf("Q: %s\nA: %s\n\n", q, nql.Repr(ix.Result))
	}

	// Ground truth for the reader: which links were actually down?
	fmt.Println("ground truth (hidden from the probes-only queries):")
	for _, e := range w.G.Edges() {
		if e.Attrs["status"] == "down" {
			fmt.Printf("  %s -> %s is down\n", e.U, e.V)
		}
	}
}

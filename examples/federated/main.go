// Federated quickstart: one query planned across the graph, dataframe and
// SQL substrates in a single sandboxed run.
//
// The per-substrate backends each bind exactly one representation of the
// network; the federated backend binds all three plus `fed`, a query
// planner whose plans push filters and projections down into each substrate
// and can join tables living in different substrates — here a SQL edge
// table against graph centrality, which no single backend can express.
//
//	go run ./examples/federated
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/federate"
	"repro/internal/llm"
	"repro/internal/nemoeval"
	"repro/internal/nql"
	"repro/internal/traffic"
)

func main() {
	// 1. A network, and a session over it using the federated backend.
	g := traffic.Generate(traffic.Config{Nodes: 80, Edges: 80, Seed: 42})
	model, err := llm.NewSim("gpt-4")
	if err != nil {
		log.Fatal(err)
	}
	session := core.NewTrafficSession(model, g, core.WithBackend("federated"))

	// 2. Ask a benchmark question. The generated program is a federated
	//    plan: the scan executes inside the SQL engine, the aggregation in
	//    the shared executor.
	ix, err := session.Ask("What is the total number of bytes transferred across all edges?")
	if err != nil {
		log.Fatal(err)
	}
	if ix.Err != nil {
		log.Fatal("execution failed: ", ix.Err)
	}
	fmt.Println("generated code:")
	fmt.Println(ix.Code)
	fmt.Printf("\nresult: %s\ncost: $%.4f\n\n", nql.Repr(ix.Result), ix.CostUSD)

	// 3. The same planner is a Go API. Build the catalog over one instance
	//    of the benchmark dataset and plan a cross-substrate join: heavy
	//    SQL edges against the graph's degree table.
	inst := nemoeval.TrafficDataset(nemoeval.DefaultTrafficConfig)()
	cat := inst.Federation()
	plan := &federate.Limit{N: 5, Input: &federate.Sort{
		Ascending: false, Cols: []string{"in_degree"},
		Input: &federate.Join{
			Left: &federate.Filter{
				Input: &federate.Scan{Source: federate.SourceSQL, Table: "edges"},
				Pred:  federate.Cmp{Col: "bytes", Op: ">", Value: int64(500000)},
			},
			Right:    &federate.Scan{Source: federate.SourceGraph, Table: federate.GraphTableDegree},
			LeftKey:  "dst",
			RightKey: "id",
		},
	}}
	fmt.Println("federated plan (optimized):")
	fmt.Print(federate.Explain(federate.Optimize(plan)))
	rel, err := federate.Run(cat, plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nheavy edges into the most connected destinations:")
	fmt.Print(rel.Frame().String())
}

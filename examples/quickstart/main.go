// Quickstart: ask a natural-language question about a network and get an
// inspectable, sandboxed program as the answer.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/llm"
	"repro/internal/nql"
	"repro/internal/traffic"
)

func main() {
	// 1. A network to manage: a synthetic communication graph (80 hosts,
	//    80 directed traffic edges carrying bytes/connections/packets).
	g := traffic.Generate(traffic.Config{Nodes: 80, Edges: 80, Seed: 42})

	// 2. An LLM. The repository ships calibrated simulations of the four
	//    models from the paper; NewSim("gpt-4") is the strongest.
	model, err := llm.NewSim("gpt-4")
	if err != nil {
		log.Fatal(err)
	}

	// 3. A session wires the pipeline: wrapper -> prompt -> LLM -> sandbox.
	session := core.NewTrafficSession(model, g)

	// 4. Ask. The response carries the generated code (for inspection),
	//    the result, and the LLM cost.
	ix, err := session.Ask("What is the total number of bytes transferred across all edges?")
	if err != nil {
		log.Fatal(err)
	}
	if ix.Err != nil {
		log.Fatal("execution failed: ", ix.Err)
	}
	fmt.Println("generated code:")
	fmt.Println(ix.Code)
	fmt.Printf("\nresult: %s\ncost: $%.4f\n", nql.Repr(ix.Result), ix.CostUSD)
}
